"""End-to-end measurement pipeline: MPLS LSP mesh -> SNMP collection -> estimation.

The paper's key infrastructure insight is that an MPLS-enabled backbone can
*measure* its traffic matrix directly: every origin-destination demand rides
its own label-switched path (LSP), and polling the per-LSP byte counters
every five minutes yields a complete traffic matrix.  This example rebuilds
that pipeline on a synthetic backbone:

1. generate a synthetic demand process on a random 8-PoP backbone;
2. signal a full LSP mesh with the CSPF simulator (bandwidth-aware routing);
3. drive a distributed set of SNMP pollers from the true traffic, with
   polling jitter and a little UDP loss;
4. reconstruct the measured traffic matrix and link loads from the collected
   counters;
5. compare (a) the measured matrix against the true one and (b) a
   tomogravity estimate computed from the measured *link loads only*,
   demonstrating why direct measurement is so much more accurate than
   inference — and what inference still offers when LSP counters are not
   available.

Run with::

    python examples/measurement_pipeline.py
"""

from __future__ import annotations

import numpy as np

from repro.estimation import EntropyEstimator, EstimationProblem
from repro.evaluation import mean_relative_error
from repro.measurement import DistributedCollector, netflow_smoothed_series
from repro.routing import CSPFRouter, LSPMesh, build_routing_matrix
from repro.topology import random_backbone
from repro.traffic import (
    SyntheticTrafficConfig,
    SyntheticTrafficModel,
    base_demand_matrix,
    european_profile,
    scaling_law_from_series,
)


def main() -> None:
    print("1. Generating a synthetic 8-PoP backbone and a busy-hour demand process...")
    network = random_backbone(8, avg_degree=3.0, seed=7, name="demo")
    config = SyntheticTrafficConfig(total_traffic_mbps=8_000.0, gravity_distortion=0.9)
    base = base_demand_matrix(network, config, seed=7)
    model = SyntheticTrafficModel(network, base, european_profile(), config, seed=8)
    series = model.generate_series(24, start_time_seconds=18 * 3600)
    print(f"   {network.num_nodes} PoPs, {network.num_links} links, "
          f"{network.num_pairs} demands, {len(series)} five-minute snapshots")

    print("2. Signalling the full LSP mesh with CSPF (bandwidth = busy-hour demand)...")
    router = CSPFRouter(network)
    mesh = LSPMesh(network, bandwidths=base.to_mapping())
    paths = router.signal_mesh(mesh)
    routing = build_routing_matrix(network, paths=paths)
    reserved = max(router.reservations.utilisation(name) for name in network.link_names)
    print(f"   routing matrix: {routing.num_links} links x {routing.num_pairs} pairs, "
          f"rank {routing.rank()}; peak reserved utilisation {reserved:.0%}")

    print("3. Collecting SNMP counters with 3 pollers (2 s jitter, 2% UDP loss)...")
    collector = DistributedCollector(
        routing, num_pollers=3, jitter_std_seconds=2.0, loss_probability=0.02, seed=9
    )
    collector.collect(series, start_time=18 * 3600)

    print("4. Reconstructing the measured traffic matrix from the LSP counters...")
    measured = collector.measured_traffic_series()
    truth = series.mean_matrix()
    measured_mean = measured.mean_matrix()
    direct_mre = mean_relative_error(measured_mean, truth)
    print(f"   MRE of the directly measured matrix: {direct_mre:.4f}")

    law = scaling_law_from_series(measured)
    netflow = netflow_smoothed_series(series, mean_flow_duration_seconds=3600.0, seed=10)
    netflow_law = scaling_law_from_series(netflow)
    print(f"   mean-variance exponent c: direct measurement {law.c:.2f}, "
          f"NetFlow-style aggregation {netflow_law.c:.2f} "
          "(aggregation suppresses the within-flow variability)")

    print("5. Estimating the matrix from the measured link loads only (tomogravity)...")
    problem = EstimationProblem(
        routing=routing,
        link_loads=collector.measured_link_loads().mean(axis=0),
        origin_totals=measured_mean.origin_totals(),
        destination_totals=measured_mean.destination_totals(),
    )
    estimate = EntropyEstimator(regularization=1000.0).estimate(problem)
    inferred_mre = mean_relative_error(estimate.estimate, truth)
    print(f"   MRE of the link-load-only estimate: {inferred_mre:.3f}")

    print(
        f"\nDirect LSP measurement is ~{inferred_mre / max(direct_mre, 1e-9):.0f}x more accurate "
        "than tomographic inference on this scenario — the reason the paper's "
        "measured traffic matrices are such a valuable evaluation asset, and why "
        "estimation is still needed wherever per-LSP counters are unavailable."
    )


if __name__ == "__main__":
    main()
