"""Failure planning: score every estimation method by induced planning error.

A full single-link failure sweep of the Europe-like scenario, the planning
study the paper's motivation section describes: for every registered method
the sweep estimates the traffic matrix once, pushes the truth and the
estimate through each failure's surviving topology (incremental CSPF
reroute), and compares the utilisation numbers an operator would plan with.

The printed table is the planning analogue of the paper's Table 2: instead
of MRE it reports, per method, the worst-case utilisation forecast across
all failures and the utilisation errors that drive it.

Run with::

    python examples/failure_planning.py
"""

from __future__ import annotations

import math

from repro.datasets import europe_scenario
from repro.planning import failure_sweep, planning_summary_table, utilisation_error_profile


def main() -> None:
    print("Building the Europe-like scenario...")
    scenario = europe_scenario()
    print(
        f"Sweeping all {scenario.network.num_links} single-link failures "
        "(plus the intact baseline) for every Table 2 method..."
    )
    records = failure_sweep(scenario, n_jobs=None)
    table = planning_summary_table(records)

    print(
        f"\n{'method':26s} {'true worst':>10s} {'predicted':>10s} "
        f"{'mean err':>9s} {'worst err':>9s} {'recall':>7s}"
    )
    for method, summary in table.items():
        if "true_worst_case_utilisation" not in summary:
            print(f"{method:26s} skipped on every case")
            continue
        recall = summary["congestion_recall"]
        recall_text = f"{recall:7.0%}" if not math.isnan(recall) else f"{'n/a':>7s}"
        print(
            f"{method:26s} "
            f"{summary['true_worst_case_utilisation']:10.1%} "
            f"{summary['predicted_worst_case_utilisation']:10.1%} "
            f"{summary['mean_max_utilisation_error']:9.2%} "
            f"{summary['worst_max_utilisation_error']:9.2%} "
            f"{recall_text}"
        )

    profile = utilisation_error_profile(records)
    if not profile:
        print("\nNo method produced scoreable records; nothing to profile.")
        return
    method = max(
        profile, key=lambda m: profile[m]["max_utilisation_error"].max(initial=0.0)
    )
    series = profile[method]
    miss = series["max_utilisation_error"].argmax()
    print(
        f"\nLargest single planning miss: {method} on {series['case'][miss]!s} "
        f"(true {series['true_max_utilisation'][miss]:.1%}, "
        f"predicted {series['predicted_max_utilisation'][miss]:.1%})."
    )
    print(
        "Interpretation: a method can have a mediocre MRE yet still rank the "
        "binding failures correctly — and vice versa; this sweep measures the "
        "error that actually reaches the planning decision."
    )


if __name__ == "__main__":
    main()
