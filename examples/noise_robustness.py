"""Noise-robustness study: estimation accuracy on measured (inconsistent) data.

The paper evaluates the estimation methods on *consistent* link loads
(``t = R s``, Section 5.1.4) and notes sensitivity to measurement errors as
future work.  This example closes that loop with the repo's measurement
pipeline: each scenario's day series is run through the distributed SNMP
collector (Section 5.1.2's infrastructure — polling jitter, UDP loss,
interval-adjusted rates), and every method is re-scored on the *measured*
LSP matrix and link loads against the true series.

The output table shows the MRE of each method as a function of the polling
jitter and loss level — at (0, 0) the measured data coincides with the
consistent data and the MREs match the paper's Table 2 runs.

Run with::

    python examples/noise_robustness.py
"""

from __future__ import annotations

from repro.datasets import abilene_scenario, europe_scenario
from repro.evaluation import robustness_sweep, robustness_table

JITTER_VALUES = (0.0, 5.0, 20.0)
LOSS_VALUES = (0.0, 0.05)
METHODS = ("gravity", "kruithof", "fanout", "bayesian")
WINDOW = 20


def main() -> None:
    scenarios = [europe_scenario(), abilene_scenario()]
    print(
        f"Sweeping {len(METHODS)} methods over jitter {JITTER_VALUES} s x "
        f"loss {LOSS_VALUES} on {[s.name for s in scenarios]} "
        f"(window of {WINDOW} busy-period snapshots)..."
    )
    records = robustness_sweep(
        scenarios,
        jitter_values=JITTER_VALUES,
        loss_values=LOSS_VALUES,
        methods=METHODS,
        window_length=WINDOW,
    )

    table = robustness_table(records)
    for scenario_name, methods in table.items():
        print(f"\n=== {scenario_name} ===")
        grid = [(j, l) for j in JITTER_VALUES for l in LOSS_VALUES]
        header = "".join(f"  j={j:>4g}s/l={l:>4g}" for j, l in grid)
        print(f"{'method':12s}{header}")
        for method, cells in methods.items():
            row = "".join(f"  {cells[(j, l)]:12.4f}" for j, l in grid)
            print(f"{method:12s}{row}")

    print(
        "\nThe (jitter=0, loss=0) column reproduces the consistent-data MREs; "
        "the other columns show how each method degrades as the link loads "
        "become inconsistent with the routing matrix."
    )


if __name__ == "__main__":
    main()
