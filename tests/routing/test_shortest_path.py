"""Tests for Dijkstra / ECMP routing."""

from __future__ import annotations

import pytest

from repro.errors import RoutingError
from repro.routing import Path, ShortestPathRouter
from repro.topology import Link, Network, Node, NodePair


class TestPathObject:
    def test_consistency_checks(self, triangle_network):
        router = ShortestPathRouter(triangle_network)
        path = router.shortest_path(NodePair("A", "B"))
        assert path.hop_count == 1
        assert path.nodes == ("A", "B")
        assert path.link_names() == ("A->B",)
        assert path.uses_link("A->B")
        assert not path.uses_link("B->C")
        assert path.bottleneck_capacity() == 1000.0
        assert len(path) == 1
        assert [link.name for link in path] == ["A->B"]

    def test_mismatched_links_rejected(self, triangle_network):
        link = triangle_network.link("A->B")
        with pytest.raises(RoutingError):
            Path(pair=NodePair("A", "C"), nodes=("A", "B"), links=(link,), cost=1.0)
        with pytest.raises(RoutingError):
            Path(pair=NodePair("A", "B"), nodes=("A", "B"), links=(), cost=1.0)
        with pytest.raises(RoutingError):
            Path(pair=NodePair("A", "B"), nodes=("A",), links=(), cost=0.0)


class TestShortestPath:
    def test_direct_link_preferred(self, triangle_network):
        router = ShortestPathRouter(triangle_network)
        path = router.shortest_path(NodePair("A", "C"))
        assert path.nodes == ("A", "C")
        assert path.cost == 1.0

    def test_multi_hop_path(self, line_network):
        router = ShortestPathRouter(line_network)
        path = router.shortest_path(NodePair("A", "D"))
        assert path.nodes == ("A", "B", "C", "D")
        assert path.cost == 3.0

    def test_metric_influences_route(self):
        network = Network("weighted")
        for name in ("A", "B", "C"):
            network.add_node(Node(name=name))
        network.add_bidirectional_link(Link(source="A", target="C", metric=10.0))
        network.add_bidirectional_link(Link(source="A", target="B", metric=1.0))
        network.add_bidirectional_link(Link(source="B", target="C", metric=1.0))
        path = ShortestPathRouter(network).shortest_path(NodePair("A", "C"))
        assert path.nodes == ("A", "B", "C")

    def test_hop_metric_ignores_weights(self):
        network = Network("weighted")
        for name in ("A", "B", "C"):
            network.add_node(Node(name=name))
        network.add_bidirectional_link(Link(source="A", target="C", metric=10.0))
        network.add_bidirectional_link(Link(source="A", target="B", metric=1.0))
        network.add_bidirectional_link(Link(source="B", target="C", metric=1.0))
        path = ShortestPathRouter(network, metric_attribute="hops").shortest_path(NodePair("A", "C"))
        assert path.nodes == ("A", "C")

    def test_unreachable_destination_raises(self):
        network = Network("disconnected", nodes=[Node(name="A"), Node(name="B")])
        with pytest.raises(RoutingError):
            ShortestPathRouter(network).shortest_path(NodePair("A", "B"))

    def test_unknown_metric_attribute_rejected(self, triangle_network):
        with pytest.raises(RoutingError):
            ShortestPathRouter(triangle_network, metric_attribute="latency")

    def test_deterministic_tie_breaking(self):
        # Two equal-cost two-hop paths A->B->D and A->C->D: the lexicographically
        # smaller node sequence must always win.
        network = Network("diamond")
        for name in ("A", "B", "C", "D"):
            network.add_node(Node(name=name))
        for a, b in (("A", "B"), ("A", "C"), ("B", "D"), ("C", "D")):
            network.add_bidirectional_link(Link(source=a, target=b, metric=1.0))
        path = ShortestPathRouter(network).shortest_path(NodePair("A", "D"))
        assert path.nodes == ("A", "B", "D")


class TestECMPAndRouteAll:
    def test_all_shortest_paths_enumerates_equal_cost(self):
        network = Network("diamond")
        for name in ("A", "B", "C", "D"):
            network.add_node(Node(name=name))
        for a, b in (("A", "B"), ("A", "C"), ("B", "D"), ("C", "D")):
            network.add_bidirectional_link(Link(source=a, target=b, metric=1.0))
        paths = ShortestPathRouter(network).all_shortest_paths(NodePair("A", "D"))
        assert len(paths) == 2
        assert {p.nodes for p in paths} == {("A", "B", "D"), ("A", "C", "D")}

    def test_single_path_when_no_ties(self, line_network):
        paths = ShortestPathRouter(line_network).all_shortest_paths(NodePair("A", "C"))
        assert len(paths) == 1

    def test_route_all_covers_every_pair(self, triangle_network):
        routes = ShortestPathRouter(triangle_network).route_all()
        assert set(routes) == set(triangle_network.node_pairs())
        for pair, path in routes.items():
            assert path.pair == pair
