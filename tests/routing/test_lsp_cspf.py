"""Tests for LSPs, RSVP-style reservations and the CSPF router."""

from __future__ import annotations

import pytest

from repro.errors import RoutingError
from repro.routing import CSPFRouter, LSP, LSPMesh, ReservationState, ShortestPathRouter
from repro.topology import Link, Network, Node, NodePair


@pytest.fixture
def two_path_network() -> Network:
    """A and B connected by a short low-capacity path and a longer fat path."""
    network = Network("twopath")
    for name in ("A", "B", "C"):
        network.add_node(Node(name=name))
    network.add_bidirectional_link(Link(source="A", target="B", capacity_mbps=100.0, metric=1.0))
    network.add_bidirectional_link(Link(source="A", target="C", capacity_mbps=1000.0, metric=2.0))
    network.add_bidirectional_link(Link(source="C", target="B", capacity_mbps=1000.0, metric=2.0))
    return network


class TestLSP:
    def test_name_and_signalling(self, two_path_network):
        lsp = LSP(pair=NodePair("A", "B"), bandwidth_mbps=10.0)
        assert lsp.name == "lsp:A->B"
        assert not lsp.is_signalled
        path = ShortestPathRouter(two_path_network).shortest_path(NodePair("A", "B"))
        lsp.signal(path)
        assert lsp.is_signalled
        lsp.tear_down()
        assert not lsp.is_signalled

    def test_signal_with_wrong_endpoints_rejected(self, two_path_network):
        lsp = LSP(pair=NodePair("A", "B"))
        wrong = ShortestPathRouter(two_path_network).shortest_path(NodePair("A", "C"))
        with pytest.raises(RoutingError):
            lsp.signal(wrong)

    def test_negative_bandwidth_rejected(self):
        with pytest.raises(RoutingError):
            LSP(pair=NodePair("A", "B"), bandwidth_mbps=-1.0)

    def test_priority_range_enforced(self):
        with pytest.raises(RoutingError):
            LSP(pair=NodePair("A", "B"), setup_priority=8)


class TestReservationState:
    def test_reserve_and_release(self, two_path_network):
        state = ReservationState(two_path_network)
        path = ShortestPathRouter(two_path_network).shortest_path(NodePair("A", "B"))
        assert state.available("A->B") == pytest.approx(100.0)
        state.reserve(path, 60.0)
        assert state.reserved("A->B") == pytest.approx(60.0)
        assert state.available("A->B") == pytest.approx(40.0)
        assert state.utilisation("A->B") == pytest.approx(0.6)
        state.release(path, 60.0)
        assert state.reserved("A->B") == pytest.approx(0.0)

    def test_admission_failure_raises(self, two_path_network):
        state = ReservationState(two_path_network)
        path = ShortestPathRouter(two_path_network).shortest_path(NodePair("A", "B"))
        assert not state.can_admit(path, 200.0)
        with pytest.raises(RoutingError):
            state.reserve(path, 200.0)

    def test_over_release_rejected(self, two_path_network):
        state = ReservationState(two_path_network)
        path = ShortestPathRouter(two_path_network).shortest_path(NodePair("A", "B"))
        state.reserve(path, 10.0)
        with pytest.raises(RoutingError):
            state.release(path, 50.0)

    def test_oversubscription_scales_capacity(self, two_path_network):
        state = ReservationState(two_path_network, oversubscription=2.0)
        assert state.available("A->B") == pytest.approx(200.0)

    def test_unknown_link_rejected(self, two_path_network):
        state = ReservationState(two_path_network)
        with pytest.raises(RoutingError):
            state.reserved("Z->Z")


class TestLSPMesh:
    def test_full_mesh_size(self, two_path_network):
        mesh = LSPMesh(two_path_network)
        assert len(mesh) == two_path_network.num_pairs
        assert all(lsp.bandwidth_mbps == 0.0 for lsp in mesh)

    def test_bandwidths_applied(self, two_path_network):
        pair = NodePair("A", "B")
        mesh = LSPMesh(two_path_network, bandwidths={pair: 42.0})
        assert mesh.lsp(pair).bandwidth_mbps == 42.0

    def test_unknown_pair_rejected(self, two_path_network):
        with pytest.raises(RoutingError):
            LSPMesh(two_path_network, bandwidths={NodePair("A", "Z"): 1.0})

    def test_signalled_paths_requires_all_signalled(self, two_path_network):
        mesh = LSPMesh(two_path_network)
        with pytest.raises(RoutingError):
            mesh.signalled_paths()


class TestCSPF:
    def test_degenerates_to_shortest_path_with_zero_bandwidth(self, two_path_network):
        router = CSPFRouter(two_path_network)
        path = router.constrained_shortest_path(NodePair("A", "B"), 0.0)
        assert path.nodes == ("A", "B")

    def test_detours_when_bandwidth_does_not_fit(self, two_path_network):
        router = CSPFRouter(two_path_network)
        path = router.constrained_shortest_path(NodePair("A", "B"), 500.0)
        assert path.nodes == ("A", "C", "B")

    def test_returns_none_when_infeasible(self, two_path_network):
        router = CSPFRouter(two_path_network)
        assert router.constrained_shortest_path(NodePair("A", "B"), 5000.0) is None

    def test_reservations_accumulate_across_lsps(self, two_path_network):
        router = CSPFRouter(two_path_network)
        first = LSP(pair=NodePair("A", "B"), bandwidth_mbps=80.0)
        second = LSP(pair=NodePair("A", "B"), bandwidth_mbps=80.0)
        router.signal_lsp(first)
        # Only 20 Mbit/s left on the direct link: the second LSP must detour.
        path = router.signal_lsp(second)
        assert path.nodes == ("A", "C", "B")

    def test_strict_mode_raises_on_infeasible(self, two_path_network):
        router = CSPFRouter(two_path_network, strict=True)
        lsp = LSP(pair=NodePair("A", "B"), bandwidth_mbps=5000.0)
        with pytest.raises(RoutingError):
            router.signal_lsp(lsp)

    def test_non_strict_falls_back_to_shortest_path(self, two_path_network):
        router = CSPFRouter(two_path_network, strict=False)
        lsp = LSP(pair=NodePair("A", "B"), bandwidth_mbps=5000.0)
        path = router.signal_lsp(lsp)
        assert path.nodes == ("A", "B")

    def test_signal_mesh_returns_all_paths(self, two_path_network):
        router = CSPFRouter(two_path_network)
        mesh = LSPMesh(two_path_network)
        paths = router.signal_mesh(mesh)
        assert set(paths) == set(two_path_network.node_pairs())

    def test_signal_mesh_rejects_foreign_mesh(self, two_path_network, triangle_network):
        router = CSPFRouter(two_path_network)
        with pytest.raises(RoutingError):
            router.signal_mesh(LSPMesh(triangle_network))

    def test_unknown_order_rejected(self, two_path_network):
        router = CSPFRouter(two_path_network)
        with pytest.raises(RoutingError):
            router.signal_mesh(LSPMesh(two_path_network), order="alphabetical")

    def test_route_all_returns_every_pair(self, two_path_network):
        paths = CSPFRouter(two_path_network).route_all()
        assert set(paths) == set(two_path_network.node_pairs())
