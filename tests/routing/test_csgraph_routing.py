"""The vectorised csgraph routing engine: parity, thresholds and fallback.

``ShortestPathRouter(engine="csgraph")`` computes all shortest-path trees
through one batched :func:`scipy.sparse.csgraph.dijkstra` call and then
reconstructs the deterministic routes.  These tests pin the contract that
makes the engine a performance knob rather than a different router:

* route-for-route identity with the pure-python sweep — node sequences,
  link sequences *and* accumulated float costs — on the named scenarios,
  random backbones and both metric modes (lexicographic and parallel-link
  tie-breaking included);
* the ``"auto"`` engine picks csgraph only at batch-worthy sizes;
* a scipy missing the feature, or distances the reconstruction cannot
  reconcile, fall back to the python sweep with a warning and identical
  results.
"""

from __future__ import annotations

import warnings

import numpy as np
import pytest

import repro.routing.shortest_path as shortest_path_module
from repro.errors import RoutingError
from repro.routing.shortest_path import _CSGRAPH_MIN_NODES, ShortestPathRouter
from repro.topology.generators import (
    abilene_backbone,
    american_backbone,
    european_backbone,
    random_backbone,
)

NAMED_BUILDERS = {
    "europe": european_backbone,
    "america": american_backbone,
    "abilene": abilene_backbone,
}


def assert_identical_routes(actual, expected):
    assert set(actual) == set(expected)
    for pair, path in actual.items():
        other = expected[pair]
        assert path.nodes == other.nodes, pair
        assert path.link_names() == other.link_names(), pair
        assert path.cost == other.cost, pair


@pytest.mark.parametrize("metric", ["metric", "hops"])
@pytest.mark.parametrize("name", sorted(NAMED_BUILDERS))
def test_csgraph_matches_python_on_named_networks(name, metric):
    network = NAMED_BUILDERS[name]()
    python = ShortestPathRouter(network, metric, engine="python").route_all()
    csgraph = ShortestPathRouter(network, metric, engine="csgraph").route_all()
    assert_identical_routes(csgraph, python)


@pytest.mark.parametrize("seed", range(4))
def test_csgraph_matches_python_on_random_backbones(seed):
    network = random_backbone(40, avg_degree=3.0, seed=seed, name=f"rand-{seed}")
    for metric in ("metric", "hops"):
        python = ShortestPathRouter(network, metric, engine="python").route_all()
        csgraph = ShortestPathRouter(network, metric, engine="csgraph").route_all()
        assert_identical_routes(csgraph, python)


def test_csgraph_matches_python_on_pair_subsets():
    network = american_backbone()
    pairs = network.node_pairs()[:40]
    python = ShortestPathRouter(network, engine="python").route_all(pairs)
    csgraph = ShortestPathRouter(network, engine="csgraph").route_all(pairs)
    assert_identical_routes(csgraph, python)


def test_auto_engine_uses_size_threshold():
    small = european_backbone()
    assert not ShortestPathRouter(small)._use_csgraph()
    assert ShortestPathRouter(small, engine="csgraph")._use_csgraph()
    large = random_backbone(_CSGRAPH_MIN_NODES, avg_degree=3.0, seed=1)
    assert ShortestPathRouter(large)._use_csgraph()
    assert not ShortestPathRouter(large, engine="python")._use_csgraph()


def test_invalid_engine_rejected():
    with pytest.raises(RoutingError):
        ShortestPathRouter(european_backbone(), engine="bogus")


def test_missing_csgraph_falls_back_with_warning(monkeypatch):
    def broken():
        raise ImportError("forced by test")

    monkeypatch.setattr(shortest_path_module, "_load_csgraph", broken)
    network = european_backbone()
    with pytest.warns(RuntimeWarning, match="falling back to the python Dijkstra sweep"):
        routed = ShortestPathRouter(network, engine="csgraph").route_all()
    expected = ShortestPathRouter(network, engine="python").route_all()
    assert_identical_routes(routed, expected)


def test_divergent_distances_fall_back_with_warning(monkeypatch):
    """A csgraph whose tie handling drifts must not silently corrupt routes."""

    class _BrokenCsgraph:
        @staticmethod
        def dijkstra(matrix, directed, indices):
            # All-zero distances admit no optimal predecessor for any node,
            # so the reconstruction must detect the inconsistency.
            return np.zeros((len(indices), matrix.shape[0]))

    monkeypatch.setattr(shortest_path_module, "_load_csgraph", lambda: _BrokenCsgraph)
    network = european_backbone()
    with pytest.warns(RuntimeWarning, match="falling back to the python Dijkstra sweep"):
        routed = ShortestPathRouter(network, engine="csgraph").route_all()
    expected = ShortestPathRouter(network, engine="python").route_all()
    assert_identical_routes(routed, expected)


def test_auto_engine_emits_no_warning_on_healthy_scipy():
    network = random_backbone(_CSGRAPH_MIN_NODES, avg_degree=3.0, seed=3)
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        ShortestPathRouter(network).route_all()
