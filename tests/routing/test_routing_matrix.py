"""Tests for routing-matrix construction and the t = R s product."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import RoutingError
from repro.routing import (
    RoutingMatrix,
    ShortestPathRouter,
    build_ecmp_routing_matrix,
    build_routing_matrix,
)
from repro.topology import Link, Network, Node, NodePair


class TestRoutingMatrixObject:
    def test_shape_and_labels(self, triangle_network):
        routing = build_routing_matrix(triangle_network)
        assert routing.shape == (6, 6)
        assert routing.num_links == 6
        assert routing.num_pairs == 6
        assert routing.link_names == triangle_network.link_names
        assert routing.pairs == triangle_network.node_pairs()

    def test_single_hop_columns_have_one_entry(self, triangle_network):
        routing = build_routing_matrix(triangle_network)
        for pair in triangle_network.node_pairs():
            column = routing.pair_column(pair)
            assert column.sum() == pytest.approx(1.0)
            assert routing.path_length(pair) == pytest.approx(1.0)

    def test_multi_hop_column(self, line_network):
        routing = build_routing_matrix(line_network)
        column = routing.pair_column(NodePair("A", "D"))
        assert column.sum() == pytest.approx(3.0)
        assert routing.link_row("A->B")[routing.pair_index(NodePair("A", "D"))] == 1.0

    def test_link_loads_match_manual_computation(self, line_network):
        routing = build_routing_matrix(line_network)
        demands = np.zeros(routing.num_pairs)
        demands[routing.pair_index(NodePair("A", "D"))] = 5.0
        demands[routing.pair_index(NodePair("A", "B"))] = 2.0
        loads = routing.link_loads(demands)
        by_name = dict(zip(routing.link_names, loads))
        assert by_name["A->B"] == pytest.approx(7.0)
        assert by_name["B->C"] == pytest.approx(5.0)
        assert by_name["C->D"] == pytest.approx(5.0)
        assert by_name["B->A"] == pytest.approx(0.0)

    def test_wrong_demand_shape_rejected(self, triangle_routing):
        with pytest.raises(RoutingError):
            triangle_routing.link_loads(np.ones(3))

    def test_rank_and_underdetermination(self, line_network, triangle_network):
        line = build_routing_matrix(line_network)
        triangle = build_routing_matrix(triangle_network)
        # The line network has 12 pairs but only 6 links: under-determined.
        assert line.is_underdetermined()
        assert line.nullity() == line.num_pairs - line.rank()
        # The triangle routes every pair on its own link: fully determined.
        assert not triangle.is_underdetermined()
        assert triangle.rank() == 6

    def test_unknown_lookups_raise(self, triangle_routing):
        with pytest.raises(RoutingError):
            triangle_routing.pair_index(NodePair("A", "Z"))
        with pytest.raises(RoutingError):
            triangle_routing.link_row("Z->Z")

    def test_invalid_construction_rejected(self, triangle_network):
        pairs = triangle_network.node_pairs()
        with pytest.raises(RoutingError):
            RoutingMatrix(np.zeros((2, 2, 2)), ["a", "b"], pairs[:2])
        with pytest.raises(RoutingError):
            RoutingMatrix(np.zeros((3, 2)), ["a", "b"], pairs[:2])
        with pytest.raises(RoutingError):
            RoutingMatrix(np.full((2, 2), 2.0), ["a", "b"], pairs[:2])


class TestBuilders:
    def test_missing_path_rejected(self, triangle_network):
        router = ShortestPathRouter(triangle_network)
        partial = {pair: router.shortest_path(pair) for pair in triangle_network.node_pairs()[:2]}
        with pytest.raises(RoutingError):
            build_routing_matrix(triangle_network, paths=partial)

    def test_cspf_builder_matches_shortest_path_for_zero_bandwidth(self, line_network):
        plain = build_routing_matrix(line_network)
        cspf = build_routing_matrix(line_network, use_cspf=True)
        assert np.allclose(plain.matrix, cspf.matrix)

    def test_ecmp_builder_splits_equal_cost_paths(self):
        network = Network("diamond")
        for name in ("A", "B", "C", "D"):
            network.add_node(Node(name=name))
        for a, b in (("A", "B"), ("A", "C"), ("B", "D"), ("C", "D")):
            network.add_bidirectional_link(Link(source=a, target=b, metric=1.0))
        ecmp = build_ecmp_routing_matrix(network)
        column = ecmp.pair_column(NodePair("A", "D"))
        # Two equal-cost paths of two hops each: four links carry 0.5.
        assert np.isclose(column.sum(), 2.0)
        assert np.isclose(column.max(), 0.5)

    def test_ecmp_matches_single_path_when_unique(self, line_network):
        plain = build_routing_matrix(line_network)
        ecmp = build_ecmp_routing_matrix(line_network)
        assert np.allclose(plain.matrix, ecmp.matrix)
