"""Batched all-pairs routing must be path-for-path identical to per-pair.

``route_all`` now serves every origin with one single-source Dijkstra
(:func:`repro.routing.single_source_shortest_paths`) instead of one
truncated Dijkstra per pair.  The relaxation and tie-breaking code is
shared, so the batched result must match the legacy per-pair loop exactly
— node sequences, link sequences and costs — on every named scenario
topology, including under the 'hops' metric where equal-cost ties are
plentiful.
"""

from __future__ import annotations

import pytest

from repro.errors import RoutingError
from repro.routing.shortest_path import ShortestPathRouter, single_source_shortest_paths
from repro.topology.elements import Link, Node, NodePair
from repro.topology.network import Network


def assert_same_paths(batched, legacy):
    assert set(batched) == set(legacy)
    for pair, path in batched.items():
        other = legacy[pair]
        assert path.nodes == other.nodes, pair
        assert path.link_names() == other.link_names(), pair
        assert path.cost == pytest.approx(other.cost, abs=1e-12), pair


@pytest.fixture(scope="module", params=["europe", "america", "abilene"])
def named_network(request):
    from repro.topology.generators import (
        abilene_backbone,
        american_backbone,
        european_backbone,
    )

    builders = {
        "europe": european_backbone,
        "america": american_backbone,
        "abilene": abilene_backbone,
    }
    return builders[request.param]()


class TestBatchedEqualsPairwise:
    def test_metric_routing_identical(self, named_network):
        router = ShortestPathRouter(named_network)
        assert_same_paths(router.route_all(), router.route_all_pairwise())

    def test_hop_routing_identical(self, named_network):
        # Minimum-hop routing maximises equal-cost ties, stressing the
        # lexicographic tie-break that both code paths must share.
        router = ShortestPathRouter(named_network, metric_attribute="hops")
        assert_same_paths(router.route_all(), router.route_all_pairwise())

    def test_random_backbones_identical(self):
        from repro.topology.generators import random_backbone

        for seed in (0, 1, 2):
            network = random_backbone(17, avg_degree=3.4, seed=seed)
            router = ShortestPathRouter(network)
            assert_same_paths(router.route_all(), router.route_all_pairwise())

    def test_pair_subset_only_routes_requested(self, named_network):
        router = ShortestPathRouter(named_network)
        subset = named_network.node_pairs()[:7]
        routed = router.route_all(subset)
        assert tuple(routed) == tuple(subset)
        assert_same_paths(routed, router.route_all_pairwise(subset))

    def test_unknown_node_rejected(self, named_network):
        from repro.errors import TopologyError

        router = ShortestPathRouter(named_network)
        with pytest.raises(TopologyError):
            router.route_all([NodePair(named_network.node_names[0], "NOPE")])


class TestSingleSource:
    def test_tree_matches_per_destination_dijkstra(self, named_network):
        router = ShortestPathRouter(named_network)
        origin = named_network.node_names[0]
        tree = single_source_shortest_paths(
            named_network, origin, lambda link: link.metric
        )
        assert set(tree) == set(named_network.node_names) - {origin}
        for destination, (nodes, links, cost) in tree.items():
            reference = router.shortest_path(NodePair(origin, destination))
            assert nodes == reference.nodes
            assert tuple(link.name for link in links) == reference.link_names()
            assert cost == pytest.approx(reference.cost, abs=1e-12)

    def test_unreachable_destination_missing_and_route_all_raises(self):
        # B -> A exists but A -> B does not: A cannot reach anything.
        network = Network("oneway")
        for name in ("A", "B"):
            network.add_node(Node(name=name))
        network.add_link(Link(source="B", target="A", capacity_mbps=1000.0, metric=1.0))

        tree = single_source_shortest_paths(network, "A", lambda link: link.metric)
        assert tree == {}
        router = ShortestPathRouter(network)
        with pytest.raises(RoutingError, match="no path"):
            router.route_all([NodePair("A", "B")])
