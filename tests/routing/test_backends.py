"""Tests for the routing-matrix storage backends (dense / sparse parity)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import RoutingError
from repro.routing import (
    DenseBackend,
    SparseBackend,
    build_routing_matrix,
    make_backend,
)
from repro.routing.backends import SPARSE_DENSITY_THRESHOLD, SPARSE_SIZE_THRESHOLD


@pytest.fixture(scope="module")
def europe():
    from repro.datasets import europe_scenario

    return europe_scenario()


@pytest.fixture(scope="module")
def europe_routing_pair(europe):
    """The europe routing matrix in both backends."""
    dense = europe.routing.with_backend("dense")
    sparse = europe.routing.with_backend("sparse")
    return dense, sparse


class TestSelection:
    def test_small_matrices_stay_dense(self, triangle_network):
        routing = build_routing_matrix(triangle_network)
        assert routing.backend_kind == "dense"

    def test_explicit_backend_is_honoured(self, triangle_network):
        sparse = build_routing_matrix(triangle_network, backend="sparse")
        dense = build_routing_matrix(triangle_network, backend="dense")
        assert sparse.backend_kind == "sparse"
        assert dense.backend_kind == "dense"

    def test_auto_picks_sparse_for_large_sparse_matrices(self):
        rows = 250
        cols = SPARSE_SIZE_THRESHOLD // rows + 1
        matrix = np.zeros((rows, cols))
        matrix[0, :] = 1.0  # density well below the threshold
        assert make_backend(matrix).kind == "sparse"

    def test_auto_keeps_dense_for_dense_matrices(self):
        rows = 250
        cols = SPARSE_SIZE_THRESHOLD // rows + 1
        density = min(1.0, 2 * SPARSE_DENSITY_THRESHOLD)
        rng = np.random.default_rng(7)
        matrix = (rng.random((rows, cols)) < density).astype(float)
        assert make_backend(matrix).kind == "dense"

    def test_unknown_backend_rejected(self, triangle_network):
        with pytest.raises(RoutingError):
            build_routing_matrix(triangle_network, backend="cuda")

    def test_entry_validation_applies_to_both_backends(self):
        bad = np.full((2, 2), 2.0)
        for backend in (DenseBackend(bad), SparseBackend(bad)):
            with pytest.raises(RoutingError):
                backend.validate_entries()


class TestOperatorParity:
    def test_link_loads_match(self, europe_routing_pair):
        dense, sparse = europe_routing_pair
        demands = np.linspace(0.0, 5.0, dense.num_pairs)
        np.testing.assert_allclose(
            dense.link_loads(demands), sparse.link_loads(demands), atol=1e-8
        )

    def test_transpose_products_match(self, europe_routing_pair):
        dense, sparse = europe_routing_pair
        loads = np.linspace(1.0, 2.0, dense.num_links)
        np.testing.assert_allclose(dense.rmatvec(loads), sparse.rmatvec(loads), atol=1e-8)
        block = np.outer(loads, np.arange(3.0))
        np.testing.assert_allclose(dense.rmatmat(block), sparse.rmatmat(block), atol=1e-8)

    def test_gram_and_dense_view_match(self, europe_routing_pair):
        dense, sparse = europe_routing_pair
        np.testing.assert_allclose(dense.gram(), sparse.gram(), atol=1e-8)
        np.testing.assert_allclose(dense.matrix, sparse.matrix, atol=0.0)

    def test_rank_and_path_lengths_match(self, europe_routing_pair):
        dense, sparse = europe_routing_pair
        assert dense.rank() == sparse.rank()
        np.testing.assert_allclose(dense.path_lengths(), sparse.path_lengths(), atol=1e-12)

    def test_rows_and_columns_match(self, europe_routing_pair):
        dense, sparse = europe_routing_pair
        name = dense.link_names[0]
        pair = dense.pairs[-1]
        np.testing.assert_allclose(dense.link_row(name), sparse.link_row(name))
        np.testing.assert_allclose(dense.pair_column(pair), sparse.pair_column(pair))


class TestEstimateParity:
    """Acceptance criterion: dense and sparse estimates agree on europe."""

    def _problem(self, scenario, routing):
        """Problem with backend-independent observables.

        The link loads are computed once from the dense backend so both
        problems see bit-identical inputs; any estimate difference is then
        attributable to the backend itself (matvec rounding differences in
        the inputs would otherwise be amplified by iterative solvers).
        """
        from repro.estimation import EstimationProblem

        truth = scenario.busy_mean_matrix()
        loads = scenario.routing.with_backend("dense").link_loads(truth.vector)
        return EstimationProblem(
            routing=routing,
            link_loads=loads,
            origin_totals=truth.origin_totals(),
            destination_totals=truth.destination_totals(),
        )

    # The sparse paths no longer densify (they run CSR operator products
    # end to end), so iterative solvers agree with the dense path to
    # solver tolerance rather than bit for bit; closed-form methods stay
    # essentially exact.
    @pytest.mark.parametrize("method,params,rtol", [
        ("gravity", {}, 1e-12),
        ("kruithof", {}, 1e-12),
        ("bayesian", {"regularization": 1000.0, "prior": "gravity"}, 1e-6),
        ("entropy", {"regularization": 1000.0, "prior": "gravity"}, 1e-4),
    ])
    def test_estimates_identical_across_backends(
        self, europe, europe_routing_pair, method, params, rtol
    ):
        from repro.estimation import get_estimator

        dense, sparse = europe_routing_pair
        dense_result = get_estimator(method, **params).estimate(self._problem(europe, dense))
        sparse_result = get_estimator(method, **params).estimate(self._problem(europe, sparse))
        np.testing.assert_allclose(
            dense_result.vector, sparse_result.vector, rtol=rtol, atol=1e-6
        )

    def test_worst_case_bounds_identical_across_backends(self, europe, europe_routing_pair):
        from repro.estimation import get_estimator

        dense, sparse = europe_routing_pair
        subset = dense.pairs[:4]
        dense_result = get_estimator("worst-case-bounds", pairs=subset).estimate(
            self._problem(europe, dense)
        )
        sparse_result = get_estimator("worst-case-bounds", pairs=subset).estimate(
            self._problem(europe, sparse)
        )
        np.testing.assert_allclose(dense_result.vector, sparse_result.vector, atol=1e-6)
