"""Round-trip tests for the JSON serialisation module."""

from __future__ import annotations

import numpy as np
import pytest

from repro import io
from repro.errors import ReproError
from repro.routing import build_routing_matrix
from repro.topology import LinkKind, NodeRole
from repro.traffic import TrafficMatrixSeries


class TestNetworkRoundTrip:
    def test_nodes_links_and_attributes_preserved(self, triangle_network):
        data = io.network_to_dict(triangle_network)
        rebuilt = io.network_from_dict(data)
        assert rebuilt.name == triangle_network.name
        assert rebuilt.node_names == triangle_network.node_names
        assert rebuilt.link_names == triangle_network.link_names
        for name in triangle_network.link_names:
            original, copy = triangle_network.link(name), rebuilt.link(name)
            assert copy.capacity_mbps == original.capacity_mbps
            assert copy.metric == original.metric
            assert copy.kind is original.kind

    def test_roles_and_regions_preserved(self, small_scenario_session):
        network = small_scenario_session.network
        rebuilt = io.network_from_dict(io.network_to_dict(network))
        for node in network.nodes:
            copy = rebuilt.node(node.name)
            assert copy.role is node.role
            assert copy.population == node.population
            assert copy.region == node.region

    def test_wrong_format_rejected(self, triangle_network):
        data = io.network_to_dict(triangle_network)
        data["format"] = "something-else"
        with pytest.raises(ReproError):
            io.network_from_dict(data)


class TestTrafficRoundTrip:
    def test_matrix_round_trip(self, triangle_traffic):
        rebuilt = io.traffic_matrix_from_dict(io.traffic_matrix_to_dict(triangle_traffic))
        assert rebuilt.pairs == triangle_traffic.pairs
        assert np.allclose(rebuilt.vector, triangle_traffic.vector)

    def test_series_round_trip(self, triangle_traffic):
        series = TrafficMatrixSeries(
            [triangle_traffic, triangle_traffic.scaled(2.0)],
            interval_seconds=300.0,
            start_time_seconds=600.0,
        )
        rebuilt = io.series_from_dict(io.series_to_dict(series))
        assert len(rebuilt) == 2
        assert rebuilt.interval_seconds == 300.0
        assert rebuilt.start_time_seconds == 600.0
        assert np.allclose(rebuilt.as_array(), series.as_array())

    def test_wrong_format_rejected(self, triangle_traffic):
        data = io.traffic_matrix_to_dict(triangle_traffic)
        data["format"] = "repro.network/1"
        with pytest.raises(ReproError):
            io.traffic_matrix_from_dict(data)


class TestRoutingRoundTrip:
    def test_matrix_and_labels_preserved(self, line_network):
        routing = build_routing_matrix(line_network)
        rebuilt = io.routing_matrix_from_dict(io.routing_matrix_to_dict(routing))
        assert rebuilt.link_names == routing.link_names
        assert rebuilt.pairs == routing.pairs
        assert np.allclose(rebuilt.matrix, routing.matrix)

    def test_sparse_encoding_only_stores_nonzeros(self, line_network):
        routing = build_routing_matrix(line_network)
        data = io.routing_matrix_to_dict(routing)
        assert len(data["entries"]) == int(np.count_nonzero(routing.matrix))


class TestFilesAndScenario:
    def test_save_and_load_json(self, tmp_path, triangle_network):
        path = tmp_path / "nested" / "net.json"
        io.save_json(io.network_to_dict(triangle_network), path)
        loaded = io.load_json(path)
        assert loaded["name"] == "triangle"

    def test_load_missing_file_raises(self, tmp_path):
        with pytest.raises(ReproError):
            io.load_json(tmp_path / "missing.json")

    def test_scenario_round_trip(self, tmp_path, small_scenario_session):
        path = tmp_path / "scenario.json"
        io.save_scenario(small_scenario_session, path)
        rebuilt = io.load_scenario(path)
        assert rebuilt.name == small_scenario_session.name
        assert rebuilt.busy_length == small_scenario_session.busy_length
        assert np.allclose(
            rebuilt.day_series.as_array(), small_scenario_session.day_series.as_array()
        )
        assert np.allclose(rebuilt.routing.matrix, small_scenario_session.routing.matrix)
        # The reloaded scenario supports the full downstream workflow.
        problem = rebuilt.snapshot_problem()
        assert problem.num_pairs == small_scenario_session.routing.num_pairs
