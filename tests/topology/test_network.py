"""Unit tests for the Network container."""

from __future__ import annotations

import pytest

from repro.errors import TopologyError
from repro.topology import Link, LinkKind, Network, Node, NodePair, NodeRole


def build_square() -> Network:
    network = Network("square")
    for name in ("A", "B", "C", "D"):
        network.add_node(Node(name=name))
    for a, b in (("A", "B"), ("B", "C"), ("C", "D"), ("D", "A")):
        network.add_bidirectional_link(Link(source=a, target=b))
    return network


class TestConstruction:
    def test_counts(self):
        network = build_square()
        assert network.num_nodes == 4
        assert network.num_links == 8
        assert network.num_pairs == 12

    def test_duplicate_node_rejected(self):
        network = Network("n")
        network.add_node(Node(name="A"))
        with pytest.raises(TopologyError):
            network.add_node(Node(name="A"))

    def test_duplicate_link_rejected(self):
        network = Network("n", nodes=[Node(name="A"), Node(name="B")])
        network.add_link(Link(source="A", target="B"))
        with pytest.raises(TopologyError):
            network.add_link(Link(source="A", target="B"))

    def test_link_with_unknown_endpoint_rejected(self):
        network = Network("n", nodes=[Node(name="A")])
        with pytest.raises(TopologyError):
            network.add_link(Link(source="A", target="Z"))

    def test_empty_name_rejected(self):
        with pytest.raises(TopologyError):
            Network("")


class TestAccess:
    def test_node_and_link_lookup(self):
        network = build_square()
        assert network.node("A").name == "A"
        assert network.link("A->B").target == "B"
        assert network.find_link("B", "C").name == "B->C"
        assert network.has_node("A") and not network.has_node("Z")
        assert network.has_link("A->B") and not network.has_link("A->C")

    def test_unknown_lookups_raise(self):
        network = build_square()
        with pytest.raises(TopologyError):
            network.node("Z")
        with pytest.raises(TopologyError):
            network.link("Z->Z")
        with pytest.raises(TopologyError):
            network.find_link("A", "C")
        with pytest.raises(TopologyError):
            network.link_index("nope")

    def test_link_index_matches_insertion_order(self):
        network = build_square()
        for idx, name in enumerate(network.link_names):
            assert network.link_index(name) == idx

    def test_adjacency(self):
        network = build_square()
        outgoing = {link.target for link in network.outgoing_links("A")}
        incoming = {link.source for link in network.incoming_links("A")}
        assert outgoing == {"B", "D"}
        assert incoming == {"B", "D"}
        assert network.degree("A") == 2

    def test_roles_partition_nodes(self):
        network = Network("roles")
        network.add_node(Node(name="acc", role=NodeRole.ACCESS))
        network.add_node(Node(name="peer", role=NodeRole.PEERING))
        network.add_node(Node(name="transit", role=NodeRole.TRANSIT))
        assert [n.name for n in network.access_nodes] == ["acc"]
        assert [n.name for n in network.peering_nodes] == ["peer"]
        assert [n.name for n in network.transit_nodes] == ["transit"]
        assert {n.name for n in network.edge_nodes} == {"acc", "peer"}

    def test_contains_iter_len(self):
        network = build_square()
        assert "A" in network and "A->B" in network and "Z" not in network
        assert len(network) == 4
        assert [node.name for node in network] == ["A", "B", "C", "D"]


class TestPairs:
    def test_pair_enumeration_excludes_diagonal_and_transit(self):
        network = build_square()
        network.add_node(Node(name="T", role=NodeRole.TRANSIT))
        pairs = network.node_pairs()
        assert len(pairs) == 12
        assert all(pair.origin != pair.destination for pair in pairs)
        assert all("T" not in (pair.origin, pair.destination) for pair in pairs)

    def test_pair_index_is_positional(self):
        network = build_square()
        index = network.pair_index()
        for position, pair in enumerate(network.node_pairs()):
            assert index[pair] == position


class TestValidationAndViews:
    def test_valid_network_passes(self):
        network = build_square()
        network.validate()
        assert network.is_connected()

    def test_disconnected_network_fails(self):
        network = Network("broken", nodes=[Node(name="A"), Node(name="B")])
        assert not network.is_connected()
        with pytest.raises(TopologyError):
            network.validate()

    def test_single_edge_node_fails_validation(self):
        network = Network("single", nodes=[Node(name="A")])
        with pytest.raises(TopologyError):
            network.validate()

    def test_to_networkx_carries_attributes(self):
        network = build_square()
        graph = network.to_networkx()
        assert graph.number_of_nodes() == 4
        assert graph.number_of_edges() == 8
        assert graph.edges["A", "B"]["capacity_mbps"] == 10_000.0

    def test_to_networkx_is_cached(self):
        network = build_square()
        assert network.to_networkx() is network.to_networkx()

    def test_to_networkx_cache_invalidated_by_add_node(self):
        network = build_square()
        first = network.to_networkx()
        network.add_node(Node(name="E"))
        second = network.to_networkx()
        assert second is not first
        assert second.has_node("E")

    def test_to_networkx_cache_invalidated_by_add_link(self):
        network = build_square()
        first = network.to_networkx()
        network.add_link(Link(source="A", target="C"))
        second = network.to_networkx()
        assert second is not first
        assert second.has_edge("A", "C")

    def test_subnetwork_drops_external_links(self):
        network = build_square()
        sub = network.subnetwork("ab", ["A", "B"])
        assert sub.num_nodes == 2
        assert {link.name for link in sub.links} == {"A->B", "B->A"}

    def test_subnetwork_with_unknown_node_rejected(self):
        with pytest.raises(TopologyError):
            build_square().subnetwork("bad", ["A", "Z"])

    def test_subnetwork_empty_selection_rejected(self):
        with pytest.raises(TopologyError):
            build_square().subnetwork("empty", [])

    def test_subnetwork_single_node_has_no_pairs(self):
        sub = build_square().subnetwork("solo", ["A"])
        assert sub.num_nodes == 1
        assert sub.num_links == 0
        assert sub.num_pairs == 0
        with pytest.raises(TopologyError):
            sub.validate()

    def test_subnetwork_can_be_disconnected(self):
        # Opposite corners of the square share no link: the subnetwork
        # keeps both nodes but is unroutable, which planning layers must
        # detect rather than assume.
        sub = build_square().subnetwork("corners", ["A", "C"])
        assert sub.num_nodes == 2
        assert sub.num_links == 0
        assert not sub.is_connected()

    def test_subnetwork_preserves_canonical_order(self):
        network = build_square()
        sub = network.subnetwork("bcd", ["D", "B", "C"])  # selection order irrelevant
        assert sub.node_names == ("B", "C", "D")
        base_order = [l.name for l in network.links if {l.source, l.target} <= {"B", "C", "D"}]
        assert list(sub.link_names) == base_order

    def test_total_capacity(self):
        network = build_square()
        assert network.total_capacity() == pytest.approx(8 * 10_000.0)

    def test_interior_links_filter(self):
        network = Network("mixed", nodes=[Node(name="A"), Node(name="B")])
        network.add_link(Link(source="A", target="B", kind=LinkKind.ACCESS))
        network.add_link(Link(source="B", target="A", kind=LinkKind.INTERIOR))
        assert [l.name for l in network.interior_links] == ["B->A"]
