"""Tests for the synthetic topology generators."""

from __future__ import annotations

import pytest

from repro.errors import TopologyError
from repro.topology import (
    AMERICAN_CITIES,
    EUROPEAN_CITIES,
    CitySpec,
    american_backbone,
    european_backbone,
    great_circle_km,
    random_backbone,
)


class TestCitySpec:
    def test_positive_population_required(self):
        with pytest.raises(TopologyError):
            CitySpec("X", 0.0, 0.0, 0.0)

    def test_city_tables_have_expected_sizes(self):
        assert len(EUROPEAN_CITIES) == 12
        assert len(AMERICAN_CITIES) == 25
        assert len({c.name for c in EUROPEAN_CITIES + AMERICAN_CITIES}) == 37


class TestGreatCircle:
    def test_zero_distance_to_self(self):
        city = EUROPEAN_CITIES[0]
        assert great_circle_km(city, city) == pytest.approx(0.0)

    def test_symmetry(self):
        a, b = EUROPEAN_CITIES[0], EUROPEAN_CITIES[1]
        assert great_circle_km(a, b) == pytest.approx(great_circle_km(b, a))

    def test_london_paris_distance_plausible(self):
        london = next(c for c in EUROPEAN_CITIES if c.name == "LON")
        paris = next(c for c in EUROPEAN_CITIES if c.name == "PAR")
        assert 300 < great_circle_km(london, paris) < 400


class TestGeographicBackbones:
    def test_european_backbone_matches_paper_counts(self):
        network = european_backbone()
        assert network.num_nodes == 12
        assert network.num_links == 72
        assert network.num_pairs == 132
        network.validate()

    def test_american_backbone_matches_paper_counts(self):
        network = american_backbone()
        assert network.num_nodes == 25
        assert network.num_links == 284
        assert network.num_pairs == 600
        network.validate()

    def test_deterministic_for_fixed_seed(self):
        first = european_backbone(seed=1)
        second = european_backbone(seed=1)
        assert first.link_names == second.link_names
        assert [l.capacity_mbps for l in first.links] == [l.capacity_mbps for l in second.links]

    def test_links_come_in_bidirectional_pairs(self):
        network = european_backbone()
        names = set(network.link_names)
        for link in network.links:
            assert f"{link.target}->{link.source}" in names

    def test_metrics_reflect_distance(self):
        network = european_backbone()
        # LON-DUB is much shorter than LON-STO, so its metric must be smaller
        # whenever both direct links exist; fall back to a sanity bound.
        for link in network.links:
            assert link.metric >= 1.0


class TestRandomBackbone:
    def test_basic_properties(self):
        network = random_backbone(8, avg_degree=3.0, seed=3)
        assert network.num_nodes == 8
        assert network.num_links >= 16  # at least the ring
        network.validate()

    def test_custom_populations(self):
        network = random_backbone(5, seed=1, populations=[5, 4, 3, 2, 1])
        assert [node.population for node in network.nodes] == [5, 4, 3, 2, 1]

    def test_populations_length_mismatch_rejected(self):
        with pytest.raises(TopologyError):
            random_backbone(5, populations=[1, 2])

    def test_too_few_nodes_rejected(self):
        with pytest.raises(TopologyError):
            random_backbone(2)

    def test_too_small_degree_rejected(self):
        with pytest.raises(TopologyError):
            random_backbone(5, avg_degree=1.0)

    def test_region_label_applied(self):
        network = random_backbone(4, seed=0, region="lab")
        assert all(node.region == "lab" for node in network.nodes)
