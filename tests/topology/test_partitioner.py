"""The automatic region partitioner and the region aggregation helpers.

``partition_regions`` must produce, for any strongly connected backbone, a
deterministic assignment whose regions are connected and balanced — the
properties the sharded estimator's correctness (connected coarse graph)
and performance (largest shard dominates solve time) rest on.
"""

from __future__ import annotations

import math

import pytest

from repro.errors import TopologyError
from repro.topology import (
    aggregate_to_regions,
    assign_regions,
    default_num_regions,
    extract_region,
    partition_regions,
    random_backbone,
)
from repro.datasets import large_scenario


@pytest.fixture(scope="module")
def network():
    return random_backbone(60, avg_degree=3.0, seed=11, name="part-60")


def region_members(assignment):
    members = {}
    for node, region in assignment.items():
        members.setdefault(region, set()).add(node)
    return members


def is_connected(network, members):
    neighbours = {}
    for link in network.links:
        neighbours.setdefault(link.source, set()).add(link.target)
        neighbours.setdefault(link.target, set()).add(link.source)
    start = next(iter(members))
    stack, seen = [start], {start}
    while stack:
        node = stack.pop()
        for other in neighbours.get(node, ()):
            if other in members and other not in seen:
                seen.add(other)
                stack.append(other)
    return seen == members


class TestPartitionRegions:
    def test_deterministic_for_fixed_seed(self, network):
        first = partition_regions(network, 4, seed=5)
        second = partition_regions(network, 4, seed=5)
        assert first == second

    def test_covers_all_nodes_with_requested_regions(self, network):
        assignment = partition_regions(network, 4, seed=5)
        assert set(assignment) == set(network.node_names)
        assert len(set(assignment.values())) == 4
        assert sorted(set(assignment.values())) == ["R00", "R01", "R02", "R03"]

    def test_every_region_is_connected(self, network):
        assignment = partition_regions(network, 5, seed=2)
        for members in region_members(assignment).values():
            assert is_connected(network, members)

    def test_regions_are_balanced(self, network):
        num_regions = 4
        assignment = partition_regions(network, num_regions, seed=5)
        cap = math.ceil(1.3 * network.num_nodes / num_regions)
        sizes = [len(members) for members in region_members(assignment).values()]
        assert max(sizes) <= cap

    def test_single_region_allowed(self, network):
        assignment = partition_regions(network, 1)
        assert set(assignment.values()) == {"R00"}

    def test_too_many_regions_rejected(self, network):
        with pytest.raises(TopologyError):
            partition_regions(network, network.num_nodes + 1)

    def test_default_num_regions_heuristic(self):
        assert default_num_regions(500) == 8
        assert default_num_regions(60) == 3
        assert default_num_regions(2) == 2
        with pytest.raises(TopologyError):
            default_num_regions(1)


class TestAssignAndAggregate:
    def test_assign_then_extract_round_trip(self, network):
        assignment = partition_regions(network, 3, seed=4)
        stamped = assign_regions(network, assignment)
        members = region_members(assignment)
        for region, expected in members.items():
            extracted = extract_region(stamped, region)
            assert set(extracted.node_names) == expected

    def test_assign_rejects_missing_nodes(self, network):
        with pytest.raises(TopologyError):
            assign_regions(network, {network.node_names[0]: "R00"})

    def test_aggregate_to_regions_shape_and_capacities(self, network):
        assignment = partition_regions(network, 3, seed=4)
        aggregated = aggregate_to_regions(network, assignment)
        assert set(aggregated.node_names) == set(assignment.values())
        # Every aggregate link's capacity is the sum of its member links,
        # its metric the minimum.
        for link in aggregated.links:
            members = [
                original
                for original in network.links
                if assignment[original.source] == link.source
                and assignment[original.target] == link.target
            ]
            assert members
            assert link.capacity_mbps == pytest.approx(
                sum(member.capacity_mbps for member in members)
            )
            assert link.metric == pytest.approx(min(member.metric for member in members))

    def test_aggregate_requires_labels_or_assignment(self, network):
        with pytest.raises(TopologyError):
            aggregate_to_regions(network)  # generated nodes carry no labels


class TestGeneratedTopologyRegions:
    def test_random_backbone_stamps_regions(self):
        network = random_backbone(30, avg_degree=3.0, seed=7, num_regions=3)
        labels = {node.region for node in network.nodes}
        assert len(labels) == 3
        assert all(node.region is not None for node in network.nodes)

    def test_random_backbone_rejects_conflicting_region_args(self):
        with pytest.raises(TopologyError):
            random_backbone(10, seed=1, region="core", num_regions=2)

    def test_large_scenario_passes_num_regions_through(self):
        scenario = large_scenario(24, seed=3, num_samples=4, num_regions=2)
        labels = {node.region for node in scenario.network.nodes}
        assert len(labels) == 2
