"""Tests for region extraction and PoP aggregation."""

from __future__ import annotations

import pytest

from repro.errors import TopologyError
from repro.topology import (
    Link,
    Network,
    Node,
    NodePair,
    NodeRole,
    aggregate_demands_to_pops,
    aggregate_to_pops,
    extract_region,
)


@pytest.fixture
def global_network() -> Network:
    """Two routers per city in two regions, interconnected."""
    network = Network("global")
    specs = [
        ("LON-cr1", "LON", "europe", NodeRole.ACCESS),
        ("LON-cr2", "LON", "europe", NodeRole.PEERING),
        ("FRA-cr1", "FRA", "europe", NodeRole.ACCESS),
        ("NYC-cr1", "NYC", "america", NodeRole.ACCESS),
        ("NYC-cr2", "NYC", "america", NodeRole.TRANSIT),
        ("CHI-cr1", "CHI", "america", NodeRole.ACCESS),
    ]
    for name, city, region, role in specs:
        network.add_node(Node(name=name, city=city, region=region, role=role, population=1.0))
    links = [
        ("LON-cr1", "LON-cr2", 10_000.0),
        ("LON-cr1", "FRA-cr1", 10_000.0),
        ("LON-cr2", "FRA-cr1", 2_500.0),
        ("NYC-cr1", "NYC-cr2", 10_000.0),
        ("NYC-cr2", "CHI-cr1", 10_000.0),
        ("NYC-cr1", "CHI-cr1", 2_500.0),
        ("LON-cr2", "NYC-cr1", 10_000.0),  # transatlantic
    ]
    for a, b, capacity in links:
        network.add_bidirectional_link(Link(source=a, target=b, capacity_mbps=capacity))
    return network


class TestExtractRegion:
    def test_keeps_only_region_nodes_and_internal_links(self, global_network):
        europe = extract_region(global_network, "europe")
        assert {n.name for n in europe.nodes} == {"LON-cr1", "LON-cr2", "FRA-cr1"}
        assert all(
            link.source in europe.node_names and link.target in europe.node_names
            for link in europe.links
        )
        # The transatlantic link must be gone.
        assert not europe.has_link("LON-cr2->NYC-cr1")

    def test_custom_name(self, global_network):
        assert extract_region(global_network, "europe", name="eu").name == "eu"

    def test_unknown_region_rejected(self, global_network):
        with pytest.raises(TopologyError):
            extract_region(global_network, "asia")


class TestAggregateToPops:
    def test_cities_become_single_nodes(self, global_network):
        pops = aggregate_to_pops(global_network)
        assert {n.name for n in pops.nodes} == {"LON", "FRA", "NYC", "CHI"}

    def test_intra_pop_links_disappear(self, global_network):
        pops = aggregate_to_pops(global_network)
        assert not pops.has_link("LON->LON")
        for link in pops.links:
            assert link.source != link.target

    def test_parallel_links_merge_capacity_and_min_metric(self, global_network):
        pops = aggregate_to_pops(global_network)
        merged = pops.find_link("LON", "FRA")
        assert merged.capacity_mbps == pytest.approx(12_500.0)

    def test_strongest_role_wins(self, global_network):
        pops = aggregate_to_pops(global_network)
        assert pops.node("LON").role is NodeRole.PEERING
        assert pops.node("NYC").role is NodeRole.ACCESS

    def test_populations_sum(self, global_network):
        pops = aggregate_to_pops(global_network)
        assert pops.node("LON").population == pytest.approx(2.0)


class TestAggregateDemands:
    def test_inter_pop_demands_sum(self, global_network):
        demands = {
            NodePair("LON-cr1", "NYC-cr1"): 10.0,
            NodePair("LON-cr2", "NYC-cr1"): 5.0,
            NodePair("LON-cr1", "LON-cr2"): 99.0,  # intra-PoP, must vanish
        }
        aggregated = aggregate_demands_to_pops(global_network, demands)
        assert aggregated == {NodePair("LON", "NYC"): 15.0}

    def test_negative_demand_rejected(self, global_network):
        with pytest.raises(TopologyError):
            aggregate_demands_to_pops(global_network, {NodePair("LON-cr1", "NYC-cr1"): -1.0})

    def test_unknown_node_rejected(self, global_network):
        with pytest.raises(TopologyError):
            aggregate_demands_to_pops(global_network, {NodePair("X", "NYC-cr1"): 1.0})
