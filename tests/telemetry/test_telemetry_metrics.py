"""Metrics registry: recording, aggregation and cross-process merging."""

from __future__ import annotations

import pytest

from repro import telemetry


class TestDisabled:
    def test_all_recorders_are_noops(self):
        telemetry.counter_inc("c")
        telemetry.gauge_set("g", 3.0)
        telemetry.histogram_observe("h", 1.0)
        telemetry.record_iterations(5)
        snapshot = telemetry.metrics_snapshot()
        assert snapshot == {"counters": {}, "gauges": {}, "histograms": {}}


class TestRecording:
    def test_counters_add_gauges_overwrite(self, telemetry_on):
        telemetry.counter_inc("solver.iterations", 3)
        telemetry.counter_inc("solver.iterations", 2)
        telemetry.gauge_set("pool.jobs", 2)
        telemetry.gauge_set("pool.jobs", 4)
        snapshot = telemetry.metrics_snapshot()
        assert snapshot["counters"]["solver.iterations"] == 5
        assert snapshot["gauges"]["pool.jobs"] == 4.0

    def test_histogram_stats(self, telemetry_on):
        for value in (4.0, 1.0, 3.0, 2.0):
            telemetry.histogram_observe("wait", value)
        stats = telemetry.metrics_snapshot()["histograms"]["wait"]
        assert stats["count"] == 4
        assert stats["sum"] == 10.0
        assert stats["mean"] == pytest.approx(2.5)
        assert stats["min"] == 1.0 and stats["max"] == 4.0
        assert stats["p50"] == 2.0
        assert stats["p95"] == 3.0  # index int(0.95 * 3) == 2 of the sorted values

    def test_record_iterations_feeds_counter_and_open_span(self, telemetry_on):
        with telemetry.span("estimate"):
            telemetry.record_iterations(4)
            telemetry.record_iterations(2)
        assert telemetry.metrics_snapshot()["counters"]["solver.iterations"] == 6
        (record,) = telemetry.drain_spans()
        assert record.attributes["ticks"] == 6


class TestMerge:
    def test_drain_clears_and_merge_restores_serial_totals(self, telemetry_on):
        telemetry.counter_inc("ipf.sweeps", 7)
        telemetry.gauge_set("gauge", 1.0)
        telemetry.histogram_observe("wait", 0.25)
        shipped = telemetry.drain_metrics()
        assert telemetry.metrics_snapshot() == {
            "counters": {},
            "gauges": {},
            "histograms": {},
        }
        # parent already has its own tallies; the worker payload folds in
        telemetry.counter_inc("ipf.sweeps", 3)
        telemetry.histogram_observe("wait", 0.75)
        telemetry.merge_metrics(shipped)
        snapshot = telemetry.metrics_snapshot()
        assert snapshot["counters"]["ipf.sweeps"] == 10
        assert snapshot["gauges"]["gauge"] == 1.0
        assert snapshot["histograms"]["wait"]["count"] == 2
        assert snapshot["histograms"]["wait"]["sum"] == 1.0

    def test_merge_none_is_a_noop(self, telemetry_on):
        telemetry.merge_metrics(None)
        assert telemetry.metrics_snapshot()["counters"] == {}
