"""Exporters: JSONL dump, Chrome trace events, summary rollup."""

from __future__ import annotations

import json

import pytest

from repro import telemetry
from repro.telemetry.spans import SpanRecord


def make_records():
    """A two-level trace: parent (1.0s) with one child (0.4s) and an event."""
    parent = SpanRecord(
        name="estimate",
        span_id="10:1",
        parent_id=None,
        start_wall=1000.0,
        duration=1.0,
        process=10,
        thread=5,
        attributes={"method": "entropy", "n_pairs": 30},
    )
    child = SpanRecord(
        name="routing.build_matrix",
        span_id="10:2",
        parent_id="10:1",
        start_wall=1000.1,
        duration=0.4,
        process=10,
        thread=5,
        events=[(0.2, "cache-miss", {"key": "triangle"})],
    )
    return [parent, child]


class TestJsonl:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        count = telemetry.export_spans_jsonl(str(path), make_records())
        assert count == 2
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert [entry["name"] for entry in lines] == ["estimate", "routing.build_matrix"]
        assert lines[0]["attributes"] == {"method": "entropy", "n_pairs": 30}
        assert lines[1]["parent_id"] == "10:1"
        assert lines[1]["events"] == [
            {"offset": 0.2, "name": "cache-miss", "attributes": {"key": "triangle"}}
        ]

    def test_defaults_to_collected_spans(self, tmp_path, telemetry_on):
        with telemetry.span("stage"):
            pass
        path = tmp_path / "spans.jsonl"
        assert telemetry.export_spans_jsonl(str(path)) == 1


class TestChromeTrace:
    def test_complete_events_shape(self):
        events = telemetry.chrome_trace_events(make_records())
        complete = [e for e in events if e["ph"] == "X"]
        instants = [e for e in events if e["ph"] == "i"]
        assert len(complete) == 2 and len(instants) == 1
        parent = complete[0]
        assert parent["name"] == "estimate[entropy]"  # label carries the method
        assert parent["ts"] == pytest.approx(1000.0 * 1e6)
        assert parent["dur"] == pytest.approx(1.0 * 1e6)
        assert parent["pid"] == 10 and parent["tid"] == 5
        assert parent["args"]["span_id"] == "10:1"
        assert "parent_id" not in parent["args"]
        child = complete[1]
        assert child["args"]["parent_id"] == "10:1"
        event = instants[0]
        assert event["name"] == "cache-miss"
        assert event["ts"] == pytest.approx((1000.1 + 0.2) * 1e6)

    def test_export_writes_perfetto_document(self, tmp_path):
        path = tmp_path / "trace.json"
        assert telemetry.export_chrome_trace(str(path), make_records()) == 2
        document = json.loads(path.read_text())
        assert document["displayTimeUnit"] == "ms"
        assert len(document["traceEvents"]) == 3


class TestSummary:
    def test_rollup_and_self_time(self):
        table = telemetry.summary_table(make_records())
        parent = table["estimate[entropy]"]
        assert parent["count"] == 1
        assert parent["total_seconds"] == pytest.approx(1.0)
        assert parent["self_seconds"] == pytest.approx(0.6)  # 1.0 minus the 0.4s child
        child = table["routing.build_matrix"]
        assert child["self_seconds"] == pytest.approx(0.4)

    def test_format_contains_rows_and_handles_empty(self):
        text = telemetry.format_summary(telemetry.summary_table(make_records()))
        assert "estimate[entropy]" in text
        assert "routing.build_matrix" in text
        assert telemetry.format_summary({}) == "(no spans recorded)"
