"""Span primitives: nesting, no-op discipline, capture and re-parenting."""

from __future__ import annotations

import os

import pytest

from repro import telemetry
from repro.telemetry.spans import _NOOP, SpanRecord


def by_name(records, name):
    return [r for r in records if r.name == name]


class TestDisabled:
    def test_span_is_shared_noop_singleton(self):
        assert telemetry.span("anything", key=1) is _NOOP
        assert telemetry.span("other") is _NOOP

    def test_nothing_is_collected(self):
        with telemetry.span("stage") as active:
            active.set_attributes(k=1)
            active.add_event("tick")
            telemetry.set_attributes(other=2)
            telemetry.add_event("module-level")
            assert telemetry.current_span() is None
        assert telemetry.collected_spans() == ()
        assert not telemetry.is_enabled()


class TestEnabled:
    def test_nesting_builds_a_tree(self, telemetry_on):
        with telemetry.span("outer") as outer:
            with telemetry.span("inner") as inner:
                assert telemetry.current_span() is inner
            with telemetry.span("sibling"):
                pass
            assert telemetry.current_span() is outer
        records = telemetry.drain_spans()
        # children finish (and are appended) before the parent
        assert [r.name for r in records] == ["inner", "sibling", "outer"]
        (outer_rec,) = by_name(records, "outer")
        assert outer_rec.parent_id is None
        for child in ("inner", "sibling"):
            (rec,) = by_name(records, child)
            assert rec.parent_id == outer_rec.span_id

    def test_ids_are_pid_prefixed_and_unique(self, telemetry_on):
        with telemetry.span("a"):
            pass
        with telemetry.span("b"):
            pass
        records = telemetry.drain_spans()
        ids = [r.span_id for r in records]
        assert len(set(ids)) == 2
        assert all(i.startswith(f"{os.getpid()}:") for i in ids)
        assert all(r.process == os.getpid() for r in records)

    def test_attributes_events_and_timing(self, telemetry_on):
        with telemetry.span("stage", method="entropy") as active:
            active.set_attributes(n_pairs=30)
            telemetry.set_attributes(extra=True)
            telemetry.add_event("retry", attempt=1)
        (record,) = telemetry.drain_spans()
        assert record.attributes["method"] == "entropy"
        assert record.attributes["n_pairs"] == 30
        assert record.attributes["extra"] is True
        (offset, name, attrs) = record.events[0]
        assert name == "retry" and attrs == {"attempt": 1}
        assert 0.0 <= offset <= record.duration
        assert record.duration >= 0.0
        assert record.end_wall == pytest.approx(record.start_wall + record.duration)
        assert record.label() == "stage[entropy]"

    def test_exception_records_error_and_propagates(self, telemetry_on):
        with pytest.raises(ValueError):
            with telemetry.span("doomed"):
                raise ValueError("boom")
        (record,) = telemetry.drain_spans()
        assert record.attributes["error"] == "ValueError"

    def test_drain_clears_collected_does_not(self, telemetry_on):
        with telemetry.span("once"):
            pass
        assert len(telemetry.collected_spans()) == 1
        assert len(telemetry.collected_spans()) == 1
        assert len(telemetry.drain_spans()) == 1
        assert telemetry.collected_spans() == ()


class TestCapture:
    def test_capture_isolates_from_global_collector(self, telemetry_on):
        with telemetry.span("before"):
            pass
        with telemetry.capture() as captured:
            with telemetry.span("inside"):
                pass
        assert [r.name for r in captured] == ["inside"]
        # the surrounding trace never saw the captured span
        assert [r.name for r in telemetry.drain_spans()] == ["before"]


class TestAttachSpans:
    @staticmethod
    def _record(name, span_id, parent_id):
        return SpanRecord(
            name=name,
            span_id=span_id,
            parent_id=parent_id,
            start_wall=100.0,
            duration=0.5,
            process=4242,
            thread=1,
        )

    def test_reparents_only_the_remote_roots(self, telemetry_on):
        remote = [
            self._record("pool.task", "4242:1", "4242:99"),  # orphan parent -> root
            self._record("estimate", "4242:2", "4242:1"),  # internal edge kept
        ]
        roots = telemetry.attach_spans(remote, parent_id="1:7")
        assert [r.span_id for r in roots] == ["4242:1"]
        records = {r.span_id: r for r in telemetry.drain_spans()}
        assert records["4242:1"].parent_id == "1:7"
        assert records["4242:2"].parent_id == "4242:1"

    def test_empty_batch_is_a_noop(self, telemetry_on):
        assert telemetry.attach_spans([], parent_id="1:7") == []
        assert telemetry.collected_spans() == ()
