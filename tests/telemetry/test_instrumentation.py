"""Telemetry wired through the estimation stack.

Every estimator's ``estimate``/``estimate_series`` opens a stage span
automatically (via ``Estimator.__init_subclass__``) and folds its scalar
diagnostics into the span attributes; the solver loops feed iteration
counters through their existing ``budget_tick`` call sites; the sharded
estimator breaks its run into named stage spans.  And all of it must
collapse to flag checks when telemetry is disabled.
"""

from __future__ import annotations

import pytest

from repro import telemetry
from repro.estimation.registry import get_estimator


def spans_named(records, name):
    return [r for r in records if r.name == name]


class TestEstimatorAutoSpans:
    def test_estimate_opens_span_with_diagnostics(
        self, telemetry_on, small_snapshot_problem
    ):
        get_estimator("tomogravity").estimate(small_snapshot_problem)
        estimate_spans = spans_named(telemetry.drain_spans(), "estimate")
        assert estimate_spans, "estimate() did not open a stage span"
        root = [s for s in estimate_spans if s.attributes["method"] == "tomogravity"]
        (record,) = root
        assert record.attributes["n_pairs"] == small_snapshot_problem.num_pairs
        # scalar diagnostics are folded in under their canonical names
        assert "residual_norm" in record.attributes
        assert record.label() == "estimate[tomogravity]"

    def test_estimate_series_opens_series_span(
        self, telemetry_on, small_scenario_session
    ):
        problem = small_scenario_session.series_problem(window_length=4)
        get_estimator("fanout").estimate_series(problem)
        records = telemetry.drain_spans()
        assert spans_named(records, "estimate_series")

    def test_disabled_estimate_records_nothing(self, small_snapshot_problem):
        get_estimator("tomogravity").estimate(small_snapshot_problem)
        assert telemetry.collected_spans() == ()


class TestSolverCounters:
    def test_iterative_solver_feeds_ticks_and_counter(
        self, telemetry_on, small_snapshot_problem
    ):
        get_estimator("entropy", prior="gravity").estimate(small_snapshot_problem)
        counters = telemetry.metrics_snapshot()["counters"]
        assert counters.get("solver.iterations", 0) > 0
        records = telemetry.drain_spans()
        (record,) = [
            s
            for s in spans_named(records, "estimate")
            if s.attributes["method"] == "entropy"
        ]
        assert record.attributes["ticks"] > 0
        assert record.attributes["ticks"] == counters["solver.iterations"]

    def test_ipf_metrics(self, telemetry_on, small_snapshot_problem):
        get_estimator("kruithof").estimate(small_snapshot_problem)
        snapshot = telemetry.metrics_snapshot()
        assert snapshot["counters"].get("ipf.sweeps", 0) > 0
        assert "ipf.max_violation" in snapshot["histograms"]

    def test_workspace_cache_counters(self, telemetry_on, small_scenario_session):
        # a fresh problem has an empty shared workspace: the first estimate
        # must miss, the second must hit
        problem = small_scenario_session.snapshot_problem()
        estimator = get_estimator("tomogravity")
        estimator.estimate(problem)
        estimator.estimate(problem)
        counters = telemetry.metrics_snapshot()["counters"]
        assert counters.get("workspace.cache_misses", 0) >= 1
        assert counters.get("workspace.cache_hits", 0) >= 1


class TestSupervisorCounters:
    def test_fallback_emits_counters_and_events(
        self, telemetry_on, small_snapshot_problem
    ):
        estimator = get_estimator(
            "supervised",
            primary="entropy",
            primary_params={"prior": "gravity"},
            fallbacks=("gravity",),
            max_iterations=2,  # the budget always trips the primary
            retries=1,
        )
        with pytest.warns(RuntimeWarning):
            result = estimator.estimate(small_snapshot_problem)
        assert result.diagnostics["degradation"]["used"] == "gravity"
        counters = telemetry.metrics_snapshot()["counters"]
        assert counters.get("supervisor.retries", 0) >= 1
        assert counters.get("supervisor.budget_trips", 0) >= 2  # primary + retry
        assert counters.get("supervisor.fallbacks", 0) == 1
        records = telemetry.drain_spans()
        event_names = {
            name for record in records for (_, name, _) in record.events
        }
        assert "supervisor.retry" in event_names
        assert "supervisor.fallback" in event_names

    def test_attempts_hops_and_budget_trip_events(
        self, telemetry_on, small_snapshot_problem
    ):
        estimator = get_estimator(
            "supervised",
            primary="entropy",
            primary_params={"prior": "gravity"},
            fallbacks=("gravity",),
            max_iterations=2,
            retries=1,
        )
        with pytest.warns(RuntimeWarning):
            estimator.estimate(small_snapshot_problem)
        snapshot = telemetry.metrics_snapshot()
        counters = snapshot["counters"]
        # Primary attempt + one retry + the fallback that succeeds.
        assert counters["supervisor.attempts"] == 3
        assert counters["supervisor.chain_hops"] == 1
        assert snapshot["histograms"]["supervisor.attempts_per_call"]["count"] == 1
        records = telemetry.drain_spans()
        events = [
            (name, attributes)
            for record in records
            for (_, name, attributes) in record.events
        ]
        trips = [attributes for name, attributes in events if name == "supervisor.budget_trip"]
        assert len(trips) == 2  # primary attempt and its retry
        for attributes in trips:
            assert attributes["method"] == "entropy"
            assert attributes["ticks"] is not None
        hops = [attributes for name, attributes in events if name == "supervisor.chain_hop"]
        assert [attributes["method"] for attributes in hops] == ["gravity"]

    def test_construct_failure_counted_and_evented(
        self, telemetry_on, small_snapshot_problem
    ):
        estimator = get_estimator(
            "supervised",
            primary="entropy",
            primary_params={"no_such_option": 1.0},
            fallbacks=("gravity",),
            retries=0,
        )
        with pytest.warns(RuntimeWarning):
            estimator.estimate(small_snapshot_problem)
        counters = telemetry.metrics_snapshot()["counters"]
        assert counters["supervisor.construct_failures"] == 1
        assert counters["supervisor.attempts"] == 2  # failed construct + fallback
        records = telemetry.drain_spans()
        event_names = {name for record in records for (_, name, _) in record.events}
        assert "supervisor.construct_failure" in event_names


class TestShardedStageSpans:
    def test_stage_spans_cover_the_run(self, telemetry_on, small_snapshot_problem):
        result = get_estimator(
            "sharded", base="gravity", num_regions=2
        ).estimate(small_snapshot_problem)
        assert result.diagnostics["num_regions"] == 2
        records = telemetry.drain_spans()
        names = {r.name for r in records}
        for stage in (
            "sharded.partition",
            "sharded.coarse",
            "sharded.shards",
            "sharded.reconcile",
        ):
            assert stage in names, f"missing stage span {stage}"
        (shards,) = spans_named(records, "sharded.shards")
        assert shards.attributes["num_shards"] >= 1
        # every stage nests under the sharded estimate span
        (estimate,) = [
            s
            for s in spans_named(records, "estimate")
            if s.attributes["method"] == "sharded"
        ]
        for stage in ("sharded.partition", "sharded.coarse", "sharded.shards"):
            (record,) = spans_named(records, stage)
            assert record.parent_id == estimate.span_id
