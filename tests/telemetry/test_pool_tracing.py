"""Traces across the process pool.

Workers record spans locally (isolated per task with ``capture``), ship
them home inside the task envelope, and the parent re-parents the remote
roots under the submitting ``pool.run`` span — so one trace covers the
whole fan-out.  Worker metrics merge into the parent registry with the
same totals a serial run would have recorded.  None of this may leak
into task *results*: serial and parallel experiment records stay
identical with telemetry enabled (the PR 3/8 invariant).
"""

from __future__ import annotations

import math
import os

import pytest

from repro import telemetry
from repro.evaluation.experiments import MethodSpec, method_comparison, run_method_specs
from repro.parallel import run_supervised_tasks


def traced_square(value):
    with telemetry.span("task.work", value=value):
        telemetry.counter_inc("task.calls")
        return value * value


TASKS = [(i,) for i in range(4)]
EXPECTED = [i * i for i in range(4)]


def spans_named(records, name):
    return [r for r in records if r.name == name]


class TestPoolSpans:
    def test_worker_spans_come_home_reparented(self, telemetry_on):
        results, report = run_supervised_tasks(traced_square, TASKS, jobs=2)
        assert results == EXPECTED
        records = telemetry.drain_spans()
        (pool_run,) = spans_named(records, "pool.run")
        assert pool_run.attributes["tasks"] == len(TASKS)
        task_spans = spans_named(records, "pool.task")
        assert len(task_spans) == len(TASKS)
        assert {s.attributes["task_index"] for s in task_spans} == set(range(len(TASKS)))
        parent_pid = os.getpid()
        for task_span in task_spans:
            assert task_span.parent_id == pool_run.span_id
            assert task_span.process != parent_pid  # recorded inside a worker
            assert task_span.attributes["queue_wait_seconds"] >= 0.0
        # the user-level span inside the task kept its worker-local parent
        work_spans = spans_named(records, "task.work")
        assert len(work_spans) == len(TASKS)
        task_ids = {s.span_id for s in task_spans}
        assert all(s.parent_id in task_ids for s in work_spans)
        assert report.remote_spans == len(task_spans) + len(work_spans)
        assert pool_run.attributes["remote_spans"] == report.remote_spans

    def test_worker_metrics_merge_to_serial_totals(self, telemetry_on):
        run_supervised_tasks(traced_square, TASKS, jobs=2)
        snapshot = telemetry.metrics_snapshot()
        assert snapshot["counters"]["task.calls"] == len(TASKS)
        waits = snapshot["histograms"]["pool.queue_wait_seconds"]
        executes = snapshot["histograms"]["pool.execute_seconds"]
        assert waits["count"] == len(TASKS)
        assert executes["count"] == len(TASKS)

    def test_serial_jobs_record_spans_inline(self, telemetry_on):
        results, report = run_supervised_tasks(traced_square, TASKS, jobs=1)
        assert results == EXPECTED
        assert report.remote_spans == 0
        records = telemetry.drain_spans()
        work_spans = spans_named(records, "task.work")
        assert len(work_spans) == len(TASKS)
        assert all(s.process == os.getpid() for s in work_spans)

    def test_disabled_pool_ships_nothing(self):
        results, report = run_supervised_tasks(traced_square, TASKS, jobs=2)
        assert results == EXPECTED
        assert report.remote_spans == 0
        assert telemetry.collected_spans() == ()
        assert telemetry.metrics_snapshot()["counters"] == {}


SPECS = (
    MethodSpec(label="Gravity", estimator="gravity"),
    MethodSpec(label="Tomogravity", estimator="tomogravity"),
    MethodSpec(label="Kruithof", estimator="kruithof"),
)


class TestRecordIdentity:
    def test_serial_equals_parallel_with_telemetry_on(
        self, telemetry_on, small_scenario_session
    ):
        serial = run_method_specs(small_scenario_session, SPECS, n_jobs=1)
        parallel = run_method_specs(small_scenario_session, SPECS, n_jobs=2)
        assert len(serial) == len(parallel)
        for a, b in zip(serial, parallel):
            for fld in a.__dataclass_fields__:
                left, right = getattr(a, fld), getattr(b, fld)
                if isinstance(left, float) and math.isnan(left):
                    assert isinstance(right, float) and math.isnan(right), fld
                else:
                    assert left == right, fld


@pytest.mark.slow
def test_sharded_method_comparison_trace_covers_every_shard(
    tmp_path, telemetry_on, monkeypatch
):
    """Acceptance pin: the exported Chrome trace of a sharded N=200 run
    contains re-parented worker spans for every shard task."""
    import json

    from repro.datasets import large_scenario

    # effective_jobs() clamps to the CPU count; pin it so the shard
    # fan-out actually crosses the pool even on a single-CPU runner
    monkeypatch.setattr(os, "cpu_count", lambda: 4)

    scenario = large_scenario(num_nodes=200, seed=3, busy_length=4, num_samples=8)
    specs = [
        MethodSpec(
            label="Sharded gravity",
            estimator="sharded",
            params={"base": "gravity", "num_regions": 4, "n_jobs": 2},
        )
    ]
    records = method_comparison(scenario, specs=specs, n_jobs=1)
    assert len(records) == 1 and records[0].failure is None

    spans = telemetry.drain_spans()
    (shards_stage,) = spans_named(spans, "sharded.shards")
    num_shards = shards_stage.attributes["num_shards"]
    assert num_shards >= 2

    trace_path = tmp_path / "trace.json"
    telemetry.export_chrome_trace(str(trace_path), spans)
    events = json.loads(trace_path.read_text())["traceEvents"]
    pool_runs = [e for e in events if e["name"] == "pool.run"]
    assert pool_runs, "shard fan-out did not open a pool.run span"
    pool_ids = {e["args"]["span_id"] for e in pool_runs}
    task_events = [e for e in events if e["name"] == "pool.task"]
    # every shard task's worker span came home, re-parented under pool.run
    assert len(task_events) == num_shards
    parent_pid = os.getpid()
    for event in task_events:
        assert event["args"]["parent_id"] in pool_ids
        assert event["pid"] != parent_pid
    # and each carries the worker-side estimate span beneath it
    task_ids = {e["args"]["span_id"] for e in task_events}
    worker_estimates = [
        e
        for e in events
        if e["name"].startswith("estimate[") and e["args"].get("parent_id") in task_ids
    ]
    assert len(worker_estimates) == num_shards
