"""Fixtures for the telemetry tests.

Telemetry state is process-global (one enabled flag, one span collector,
one metrics registry), so every test in this package runs under an
autouse guard that disables and clears telemetry afterwards — a leaked
enabled flag would make unrelated suites start collecting spans.
"""

from __future__ import annotations

import pytest

from repro import telemetry


@pytest.fixture(autouse=True)
def _telemetry_clean():
    telemetry.disable()
    telemetry.reset_telemetry()
    yield
    telemetry.disable()
    telemetry.reset_telemetry()


@pytest.fixture
def telemetry_on(_telemetry_clean):
    """Telemetry enabled with empty collectors, torn down afterwards."""
    telemetry.enable()
    yield
