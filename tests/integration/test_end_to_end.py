"""Integration tests spanning topology -> routing -> traffic -> measurement -> estimation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import small_scenario
from repro.estimation import (
    BayesianEstimator,
    DirectMeasurementCombiner,
    EntropyEstimator,
    EstimationProblem,
    FanoutEstimator,
    SimpleGravityEstimator,
    TomogravityEstimator,
    VardiEstimator,
    WorstCaseBoundsEstimator,
)
from repro.evaluation import demand_ranking_correlation, mean_relative_error
from repro.measurement import DistributedCollector, netflow_smoothed_series
from repro.routing import CSPFRouter, LSPMesh, build_routing_matrix
from repro.topology import random_backbone
from repro.traffic import (
    SyntheticTrafficConfig,
    SyntheticTrafficModel,
    base_demand_matrix,
    european_profile,
)


class TestMeasurementToEstimationPipeline:
    """The full paper pipeline: LSP mesh -> SNMP collection -> estimation."""

    @pytest.fixture(scope="class")
    def pipeline(self):
        network = random_backbone(6, avg_degree=3.0, seed=41)
        config = SyntheticTrafficConfig(total_traffic_mbps=4_000.0, gravity_distortion=0.6)
        base = base_demand_matrix(network, config, seed=41)
        model = SyntheticTrafficModel(network, base, european_profile(), config, seed=42)
        series = model.generate_series(12, start_time_seconds=18 * 3600)

        # Signal the LSP mesh with CSPF using the base matrix as bandwidth values.
        router = CSPFRouter(network)
        mesh = LSPMesh(network, bandwidths=base.to_mapping())
        paths = router.signal_mesh(mesh)
        routing = build_routing_matrix(network, paths=paths)

        collector = DistributedCollector(routing, num_pollers=2, jitter_std_seconds=0.0, seed=43)
        collector.collect(series)
        return network, routing, series, collector

    def test_collected_matrix_matches_true_series(self, pipeline):
        _, _, series, collector = pipeline
        measured = collector.measured_traffic_series()
        assert np.allclose(measured.as_array(), series.as_array(), rtol=1e-3, atol=1e-2)

    def test_collected_link_loads_consistent_with_routing(self, pipeline):
        _, routing, series, collector = pipeline
        loads = collector.measured_link_loads()
        expected = np.stack([routing.link_loads(snapshot.vector) for snapshot in series])
        assert np.allclose(loads, expected, rtol=1e-3, atol=1e-2)

    def test_estimation_from_collected_data(self, pipeline):
        """Estimate from the *measured* (collected) data, not the ground truth."""
        _, routing, series, collector = pipeline
        measured = collector.measured_traffic_series()
        truth = series.mean_matrix()
        mean_measured = measured.mean_matrix()
        problem = EstimationProblem(
            routing=routing,
            link_loads=collector.measured_link_loads().mean(axis=0),
            origin_totals=mean_measured.origin_totals(),
            destination_totals=mean_measured.destination_totals(),
        )
        estimate = EntropyEstimator(regularization=1000.0).estimate(problem).estimate
        gravity = SimpleGravityEstimator().estimate(problem).estimate
        assert mean_relative_error(estimate, truth) < mean_relative_error(gravity, truth)


class TestScenarioLevelComparisons:
    """Qualitative findings of the paper reproduced on a small scenario."""

    @pytest.fixture(scope="class")
    def scenario(self):
        # A hot-spot-heavy traffic matrix (strong gravity violation), which is
        # where the paper's qualitative ordering of the methods shows clearly.
        return small_scenario(
            seed=51, num_nodes=7, busy_length=30, num_samples=80, gravity_distortion=1.2
        )

    @pytest.fixture(scope="class")
    def snapshot(self, scenario):
        truth = scenario.busy_mean_matrix()
        return truth, scenario.snapshot_problem(truth)

    def test_regularized_methods_beat_priors(self, snapshot):
        truth, problem = snapshot
        gravity = mean_relative_error(SimpleGravityEstimator().estimate(problem).estimate, truth)
        entropy = mean_relative_error(
            EntropyEstimator(regularization=1000.0).estimate(problem).estimate, truth
        )
        bayes = mean_relative_error(
            BayesianEstimator(regularization=1000.0).estimate(problem).estimate, truth
        )
        assert entropy < gravity
        assert bayes < gravity

    def test_wcb_prior_beats_gravity_prior(self, snapshot):
        truth, problem = snapshot
        wcb = WorstCaseBoundsEstimator().estimate(problem)
        gravity = SimpleGravityEstimator().estimate(problem)
        assert mean_relative_error(wcb.estimate, truth) < mean_relative_error(
            gravity.estimate, truth
        )

    def test_estimators_rank_demands_accurately(self, snapshot):
        """The paper's remark that methods identify the large demands reliably."""
        truth, problem = snapshot
        true_top = set(truth.top_demands(10))
        for estimator in (
            SimpleGravityEstimator(),
            EntropyEstimator(regularization=1000.0),
            TomogravityEstimator(flavour="bayesian"),
        ):
            estimate = estimator.estimate(problem).estimate
            assert demand_ranking_correlation(estimate, truth) > 0.4
            # Most of the ten largest true demands appear among the ten largest estimates.
            assert len(set(estimate.top_demands(10)) & true_top) >= 6

    def test_vardi_worse_than_regularized_on_non_poisson_data(self, scenario):
        truth = scenario.busy_mean_matrix()
        problem = scenario.snapshot_problem(truth)
        entropy = mean_relative_error(
            EntropyEstimator(regularization=1000.0).estimate(problem).estimate, truth
        )
        series_problem = scenario.series_problem(window_length=30)
        series_truth = scenario.busy_series().window(0, 30).mean_matrix()
        vardi = mean_relative_error(
            VardiEstimator(poisson_weight=1.0).estimate(series_problem).estimate, series_truth
        )
        assert vardi > entropy

    def test_direct_measurements_reduce_error(self, snapshot):
        truth, problem = snapshot
        estimator = EntropyEstimator(regularization=1000.0)
        baseline = mean_relative_error(estimator.estimate(problem).estimate, truth)
        # Measuring a handful of the largest demands collapses the MRE (Figure 16).
        measured_pairs = truth.top_demands(10)
        combiner = DirectMeasurementCombiner(
            estimator, {pair: truth.demand(pair) for pair in measured_pairs}
        )
        improved = mean_relative_error(combiner.estimate(problem).estimate, truth)
        assert improved < baseline
        assert improved < 0.1

    def test_netflow_aggregation_biases_variance_low(self, scenario):
        """The measurement-methodology argument motivating the paper's data set."""
        busy = scenario.busy_series()
        smoothed = netflow_smoothed_series(busy, mean_flow_duration_seconds=3600.0, seed=5)
        true_variance = busy.demand_variances().sum()
        smoothed_variance = smoothed.demand_variances().sum()
        assert smoothed_variance < true_variance
