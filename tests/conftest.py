"""Shared fixtures for the test suite.

The fixtures provide three classes of objects:

* **hand-built tiny networks** whose routing and traffic can be verified by
  hand (``triangle_network``, ``line_network``);
* a **small synthetic scenario** (module-scoped, deterministic) used by the
  estimation and evaluation tests;
* convenience traffic matrices and estimation problems derived from them.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import small_scenario
from repro.routing import build_routing_matrix
from repro.topology import Link, LinkKind, Network, Node, NodePair, NodeRole
from repro.traffic import TrafficMatrix


@pytest.fixture
def triangle_network() -> Network:
    """Three access PoPs fully meshed with unit metrics.

    Every demand is routed over its direct link, so the routing matrix is a
    permutation-like 0/1 matrix that makes analytic verification trivial.
    """
    network = Network("triangle")
    for name in ("A", "B", "C"):
        network.add_node(Node(name=name, role=NodeRole.ACCESS, population=1.0))
    for a, b in (("A", "B"), ("B", "C"), ("A", "C")):
        network.add_bidirectional_link(Link(source=a, target=b, capacity_mbps=1000.0, metric=1.0))
    return network


@pytest.fixture
def line_network() -> Network:
    """Four nodes in a line A - B - C - D (B and C are transit-capable).

    Demands between the end nodes must traverse the interior links, which
    exercises multi-hop routing and makes the estimation problem genuinely
    under-determined.
    """
    network = Network("line")
    for name in ("A", "B", "C", "D"):
        network.add_node(Node(name=name, role=NodeRole.ACCESS, population=1.0))
    for a, b in (("A", "B"), ("B", "C"), ("C", "D")):
        network.add_bidirectional_link(Link(source=a, target=b, capacity_mbps=1000.0, metric=1.0))
    return network


@pytest.fixture
def triangle_routing(triangle_network):
    """Routing matrix of the triangle network (shortest path)."""
    return build_routing_matrix(triangle_network)


@pytest.fixture
def triangle_traffic(triangle_network) -> TrafficMatrix:
    """A hand-written traffic matrix on the triangle network."""
    demands = {
        NodePair("A", "B"): 100.0,
        NodePair("B", "A"): 80.0,
        NodePair("A", "C"): 60.0,
        NodePair("C", "A"): 40.0,
        NodePair("B", "C"): 20.0,
        NodePair("C", "B"): 10.0,
    }
    return TrafficMatrix.from_network(triangle_network, demands)


@pytest.fixture(scope="session")
def small_scenario_session():
    """A deterministic small scenario shared across the estimation tests.

    Session-scoped because building it involves routing and generating a
    traffic series; tests must not mutate it.
    """
    return small_scenario(seed=11, num_nodes=6, busy_length=20, num_samples=60)


@pytest.fixture(scope="session")
def small_snapshot_problem(small_scenario_session):
    """Snapshot estimation problem for the small scenario's busy-mean matrix."""
    return small_scenario_session.snapshot_problem()


@pytest.fixture(scope="session")
def small_truth(small_scenario_session) -> TrafficMatrix:
    """Ground-truth busy-period mean matrix of the small scenario."""
    return small_scenario_session.busy_mean_matrix()
