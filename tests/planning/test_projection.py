"""Load-projection tests: utilisations, headroom, growth, lost traffic."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import PlanningError
from repro.planning import (
    BASELINE,
    FailureCase,
    WhatIfEngine,
    project_load,
    scale_demands,
)
from repro.routing import build_routing_matrix
from repro.traffic import TrafficMatrix


class TestProjectLoad:
    def test_triangle_utilisations_by_hand(self, triangle_network, triangle_traffic):
        routing = build_routing_matrix(triangle_network)
        projection = project_load(routing, triangle_traffic)
        # Direct links carry exactly their own demand (capacity 1000).
        assert projection.utilisation_of("A->B") == pytest.approx(0.1)
        assert projection.utilisation_of("B->A") == pytest.approx(0.08)
        assert projection.max_utilisation == pytest.approx(0.1)
        assert projection.headroom == pytest.approx(10.0)
        assert projection.is_feasible
        assert projection.case is BASELINE

    def test_growth_scales_loads(self, triangle_network, triangle_traffic):
        routing = build_routing_matrix(triangle_network)
        base = project_load(routing, triangle_traffic)
        grown = project_load(routing, triangle_traffic, growth=1.5)
        np.testing.assert_allclose(grown.loads, 1.5 * base.loads)
        assert grown.max_utilisation == pytest.approx(1.5 * base.max_utilisation)

    def test_congested_links_threshold(self, triangle_network, triangle_traffic):
        routing = build_routing_matrix(triangle_network)
        projection = project_load(routing, triangle_traffic, threshold=0.09)
        assert projection.congested_links == ("A->B",)

    def test_top_links_sorted(self, triangle_network, triangle_traffic):
        routing = build_routing_matrix(triangle_network)
        top = project_load(routing, triangle_traffic).top_links(2)
        assert [name for name, _ in top] == ["A->B", "B->A"]
        assert top[0][1] >= top[1][1]

    def test_pair_order_mismatch_rejected(self, triangle_network, triangle_traffic):
        routing = build_routing_matrix(triangle_network)
        shuffled = TrafficMatrix(
            tuple(reversed(triangle_traffic.pairs)),
            list(reversed(triangle_traffic.vector)),
        )
        with pytest.raises(PlanningError):
            project_load(routing, shuffled)

    def test_unknown_link_lookup_rejected(self, triangle_network, triangle_traffic):
        routing = build_routing_matrix(triangle_network)
        with pytest.raises(PlanningError):
            project_load(routing, triangle_traffic).utilisation_of("Z->Q")


class TestScaleDemands:
    def test_uniform_scaling(self, triangle_traffic):
        grown = scale_demands(triangle_traffic, 1.5)
        np.testing.assert_allclose(grown.vector, 1.5 * triangle_traffic.vector)
        assert grown.pairs == triangle_traffic.pairs

    def test_negative_factor_rejected(self, triangle_traffic):
        with pytest.raises(PlanningError):
            scale_demands(triangle_traffic, -1.0)


class TestInfeasibleProjection:
    def test_partition_reports_lost_traffic(self, dumbbell_scenario):
        engine = dumbbell_scenario.planning()
        truth = dumbbell_scenario.busy_mean_matrix()
        case = FailureCase(
            name="link-pair:C<->D", kind="link-pair", failed_links=("C->D", "D->C")
        )
        projection = engine.project(truth, case)
        assert not projection.is_feasible
        left, right = {"A", "B", "C"}, {"D", "E", "F"}
        crossing = [
            pair
            for pair in truth.pairs
            if (pair.origin in left) != (pair.destination in left)
        ]
        assert set(projection.infeasible_pairs) == set(crossing)
        expected_lost = sum(truth.demand(pair) for pair in crossing)
        assert projection.lost_traffic == pytest.approx(expected_lost)
        # The surviving loads only carry the intra-triangle demands.
        surviving_total = truth.total - expected_lost
        assert projection.loads.sum() <= 2 * surviving_total + 1e-9

    def test_feasible_case_loses_nothing(self, dumbbell_scenario):
        engine = dumbbell_scenario.planning()
        truth = dumbbell_scenario.busy_mean_matrix()
        case = FailureCase(name="link:A->B", kind="link", failed_links=("A->B",))
        projection = engine.project(truth, case)
        assert projection.is_feasible
        assert projection.lost_traffic == 0.0
        # Traffic is conserved and re-routed paths are never shorter, so the
        # total link load can only grow relative to the intact topology.
        base = engine.project(truth, BASELINE)
        assert projection.loads.sum() >= base.loads.sum() - 1e-9
