"""Unit tests for failure-case enumeration and surviving topologies."""

from __future__ import annotations

import pytest

from repro.errors import PlanningError
from repro.planning import BASELINE, FailureCase, enumerate_failures, surviving_network


class TestFailureCase:
    def test_baseline_fails_nothing(self):
        assert BASELINE.is_baseline
        assert BASELINE.failed_links == () and BASELINE.failed_nodes == ()

    def test_baseline_with_failures_rejected(self):
        with pytest.raises(PlanningError):
            FailureCase(name="bad", kind="baseline", failed_links=("A->B",))

    def test_non_baseline_must_fail_something(self):
        with pytest.raises(PlanningError):
            FailureCase(name="empty", kind="link")

    def test_unknown_kind_rejected(self):
        with pytest.raises(PlanningError):
            FailureCase(name="x", kind="meteor", failed_links=("A->B",))

    def test_empty_name_rejected(self):
        with pytest.raises(PlanningError):
            FailureCase(name="", kind="link", failed_links=("A->B",))


class TestEnumeration:
    def test_single_link_cases(self, dumbbell_network):
        cases = enumerate_failures(dumbbell_network, kinds=("link",))
        assert len(cases) == dumbbell_network.num_links
        assert [c.failed_links[0] for c in cases] == list(dumbbell_network.link_names)
        assert all(c.kind == "link" and not c.failed_nodes for c in cases)

    def test_link_pair_cases_group_both_directions(self, dumbbell_network):
        cases = enumerate_failures(dumbbell_network, kinds=("link-pair",))
        assert len(cases) == dumbbell_network.num_links // 2
        bridge = [c for c in cases if c.name == "link-pair:C<->D"]
        assert len(bridge) == 1
        assert set(bridge[0].failed_links) == {"C->D", "D->C"}

    def test_node_cases(self, dumbbell_network):
        cases = enumerate_failures(dumbbell_network, kinds=("node",))
        assert [c.failed_nodes[0] for c in cases] == list(dumbbell_network.node_names)

    def test_baseline_prepended(self, dumbbell_network):
        cases = enumerate_failures(dumbbell_network, include_baseline=True)
        assert cases[0] is BASELINE
        assert len(cases) == dumbbell_network.num_links + 1

    def test_kind_order_respected(self, dumbbell_network):
        cases = enumerate_failures(dumbbell_network, kinds=("node", "link"))
        kinds = [c.kind for c in cases]
        assert kinds == ["node"] * dumbbell_network.num_nodes + ["link"] * dumbbell_network.num_links

    def test_unknown_kind_rejected(self, dumbbell_network):
        with pytest.raises(PlanningError):
            enumerate_failures(dumbbell_network, kinds=("fire",))
        with pytest.raises(PlanningError):
            enumerate_failures(dumbbell_network, kinds=("baseline",))


class TestSurvivingNetwork:
    def test_link_failure_drops_only_that_link(self, dumbbell_network):
        case = FailureCase(name="link:C->D", kind="link", failed_links=("C->D",))
        survivor = surviving_network(dumbbell_network, case)
        assert survivor.num_nodes == dumbbell_network.num_nodes
        assert survivor.num_links == dumbbell_network.num_links - 1
        assert not survivor.has_link("C->D")
        assert survivor.has_link("D->C")

    def test_node_failure_drops_incident_links(self, dumbbell_network):
        case = FailureCase(name="node:C", kind="node", failed_nodes=("C",))
        survivor = surviving_network(dumbbell_network, case)
        assert not survivor.has_node("C")
        assert all("C" not in (l.source, l.target) for l in survivor.links)

    def test_survivor_preserves_canonical_order(self, dumbbell_network):
        case = FailureCase(name="link:A->B", kind="link", failed_links=("A->B",))
        survivor = surviving_network(dumbbell_network, case)
        expected = [name for name in dumbbell_network.link_names if name != "A->B"]
        assert list(survivor.link_names) == expected

    def test_unknown_elements_rejected(self, dumbbell_network):
        with pytest.raises(PlanningError):
            surviving_network(
                dumbbell_network,
                FailureCase(name="x", kind="link", failed_links=("Z->Q",)),
            )
        with pytest.raises(PlanningError):
            surviving_network(
                dumbbell_network,
                FailureCase(name="x", kind="node", failed_nodes=("Z",)),
            )

    def test_bridge_pair_failure_partitions(self, dumbbell_network):
        case = FailureCase(
            name="link-pair:C<->D", kind="link-pair", failed_links=("C->D", "D->C")
        )
        survivor = surviving_network(dumbbell_network, case)
        assert not survivor.is_connected()
