"""Fixtures for the planning tests: a partitionable dumbbell topology.

Two triangles joined by a single bidirectional bridge.  Every redundant
element can fail without disconnecting anything, but failing the bridge
(either direction, or the pair) partitions the cross-triangle demands —
exactly the case the planning layer must survive with structured
``infeasible`` results instead of exceptions.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import Scenario
from repro.routing import build_routing_matrix
from repro.topology import Link, Network, Node
from repro.traffic import TrafficMatrix, TrafficMatrixSeries


@pytest.fixture
def dumbbell_network() -> Network:
    """Triangles A-B-C and D-E-F joined by the single bridge C<->D."""
    network = Network("dumbbell")
    for name in ("A", "B", "C", "D", "E", "F"):
        network.add_node(Node(name=name, population=1.0))
    triangles = (("A", "B"), ("B", "C"), ("A", "C"), ("D", "E"), ("E", "F"), ("D", "F"))
    for a, b in triangles:
        network.add_bidirectional_link(Link(source=a, target=b, capacity_mbps=1000.0, metric=1.0))
    network.add_bidirectional_link(Link(source="C", target="D", capacity_mbps=1000.0, metric=1.0))
    return network


@pytest.fixture
def dumbbell_scenario(dumbbell_network) -> Scenario:
    """A small deterministic scenario over the dumbbell topology."""
    pairs = dumbbell_network.node_pairs()
    rng = np.random.default_rng(7)
    snapshots = [
        TrafficMatrix(pairs, 50.0 + 40.0 * rng.random(len(pairs))) for _ in range(8)
    ]
    series = TrafficMatrixSeries(snapshots)
    return Scenario(
        name="dumbbell",
        network=dumbbell_network,
        routing=build_routing_matrix(dumbbell_network),
        day_series=series,
        busy_length=4,
    )
