"""What-if engine tests: incremental reroute parity, caching, partitions.

The load-bearing property is *parity*: the incremental rerouter — which
re-signals only the demands whose path traversed a failed element — must
produce exactly the routing matrix a from-scratch mesh re-signal of the
surviving topology produces, for every failure case.  The Europe and
Abilene parity tests below are the acceptance criterion of the planning
subsystem.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import abilene_scenario, europe_scenario
from repro.planning import (
    BASELINE,
    FailureCase,
    WhatIfEngine,
    enumerate_failures,
    full_rebuild_routing,
)
from repro.routing import IncrementalRerouter, build_routing_matrix
from repro.topology.elements import NodePair


def assert_parity(network, cases):
    """Incremental reroute must match the from-scratch rebuild on every case."""
    rerouter = IncrementalRerouter(network)
    for case in cases:
        incremental, result = rerouter.reroute_matrix(case.failed_links, case.failed_nodes)
        full, infeasible = full_rebuild_routing(network, case)
        np.testing.assert_array_equal(
            incremental.matrix, full.matrix, err_msg=f"matrix mismatch for {case.name}"
        )
        assert tuple(result.infeasible) == infeasible, case.name


class TestIncrementalParity:
    def test_dumbbell_all_kinds(self, dumbbell_network):
        cases = enumerate_failures(
            dumbbell_network, kinds=("link", "link-pair", "node"), include_baseline=True
        )
        assert_parity(dumbbell_network, cases)

    def test_europe_single_link_failures(self):
        scenario = europe_scenario()
        cases = enumerate_failures(scenario.network, kinds=("link",))
        assert_parity(scenario.network, cases)

    def test_abilene_single_link_failures(self):
        scenario = abilene_scenario()
        cases = enumerate_failures(scenario.network, kinds=("link",))
        assert_parity(scenario.network, cases)

    def test_abilene_node_failures(self):
        scenario = abilene_scenario()
        cases = enumerate_failures(scenario.network, kinds=("node",))
        assert_parity(scenario.network, cases)


class TestIncrementalRerouter:
    def test_base_matrix_matches_builder(self, dumbbell_network):
        rerouter = IncrementalRerouter(dumbbell_network)
        built = build_routing_matrix(dumbbell_network)
        np.testing.assert_array_equal(rerouter.base_matrix.matrix, built.matrix)

    def test_only_affected_pairs_rerouted(self, dumbbell_network):
        rerouter = IncrementalRerouter(dumbbell_network)
        result = rerouter.reroute(failed_links=("A->B",))
        assert NodePair("A", "B") in result.rerouted
        # Demands inside the other triangle never touched A->B.
        assert NodePair("D", "E") not in result.rerouted
        assert result.paths[NodePair("D", "E")] is rerouter.base_paths[NodePair("D", "E")]

    def test_bridge_failure_reports_infeasible_pairs(self, dumbbell_network):
        rerouter = IncrementalRerouter(dumbbell_network)
        result = rerouter.reroute(failed_links=("C->D",))
        # Every left->right demand crossed C->D; the reverse direction is fine.
        left, right = {"A", "B", "C"}, {"D", "E", "F"}
        expected = {
            NodePair(a, b)
            for a in left
            for b in right
        }
        assert set(result.infeasible) == expected
        assert not result.is_feasible
        assert all(result.paths[pair] is None for pair in expected)

    def test_failed_endpoint_pairs_infeasible(self, dumbbell_network):
        rerouter = IncrementalRerouter(dumbbell_network)
        result = rerouter.reroute(failed_nodes=("A",))
        assert all(
            "A" in (pair.origin, pair.destination) for pair in result.infeasible
        )
        assert len(result.infeasible) == 2 * (dumbbell_network.num_nodes - 1)

    def test_infeasible_pair_has_zero_column(self, dumbbell_network):
        rerouter = IncrementalRerouter(dumbbell_network)
        matrix, result = rerouter.reroute_matrix(failed_links=("C->D",))
        for pair in result.infeasible:
            assert matrix.pair_column(pair).sum() == 0.0

    def test_fallback_lsps_hold_no_reservation(self):
        # Line A-B-C-D: the 90 Mbit/s A->D LSP reserves every link; the
        # 50 Mbit/s B->C LSP cannot be placed (only 10 left on its only
        # route) and falls back unreserved.  The rerouter's replayed
        # reservation state must match the CSPF router's exactly — treating
        # the fallback as a holder would release phantom capacity on repair.
        from repro.routing import CSPFRouter, LSPMesh
        from repro.topology import Link, Network, Node

        network = Network("line4")
        for name in ("A", "B", "C", "D"):
            network.add_node(Node(name=name))
        for a, b in (("A", "B"), ("B", "C"), ("C", "D")):
            network.add_bidirectional_link(
                Link(source=a, target=b, capacity_mbps=100.0, metric=1.0)
            )
        bandwidths = {pair: 0.0 for pair in network.node_pairs()}
        bandwidths[NodePair("A", "D")] = 90.0
        bandwidths[NodePair("B", "C")] = 50.0

        rerouter = IncrementalRerouter(network, bandwidths=bandwidths)
        router = CSPFRouter(network)
        router.signal_mesh(LSPMesh(network, bandwidths=bandwidths), order="bandwidth")
        assert rerouter._base_reserved == router.reservations.snapshot()
        assert NodePair("A", "D") in rerouter._reservation_holders
        assert NodePair("B", "C") not in rerouter._reservation_holders

    def test_cspf_bandwidth_mode_respects_capacity(self):
        # Two parallel two-hop routes between access nodes; the second LSP
        # must avoid the link the first one filled.
        from repro.topology import Link, Network, Node

        network = Network("diamond")
        for name in ("S", "X", "Y", "T"):
            network.add_node(Node(name=name))
        for a, b in (("S", "X"), ("X", "T"), ("S", "Y"), ("Y", "T")):
            network.add_bidirectional_link(
                Link(source=a, target=b, capacity_mbps=100.0, metric=1.0)
            )
        bandwidths = {pair: 0.0 for pair in network.node_pairs()}
        bandwidths[NodePair("S", "T")] = 90.0
        bandwidths[NodePair("X", "Y")] = 90.0
        rerouter = IncrementalRerouter(network, bandwidths=bandwidths)
        st_path = rerouter.base_paths[NodePair("S", "T")]
        xy_path = rerouter.base_paths[NodePair("X", "Y")]
        # Both demands need 90 of 100 Mbit/s: their paths cannot share a link.
        assert not (set(st_path.link_names()) & set(xy_path.link_names()))


class TestWhatIfEngine:
    def test_baseline_routing_is_base_matrix(self, dumbbell_network):
        engine = WhatIfEngine(dumbbell_network)
        routing, result = engine.routing_for(BASELINE)
        assert routing is engine.base_routing
        assert result.is_feasible and not result.rerouted

    def test_case_routing_is_cached(self, dumbbell_network):
        engine = WhatIfEngine(dumbbell_network)
        case = FailureCase(name="link:A->B", kind="link", failed_links=("A->B",))
        first = engine.routing_for(case)
        assert engine.routing_for(case) is first

    def test_cache_keys_on_failed_elements_not_name(self, dumbbell_network):
        engine = WhatIfEngine(dumbbell_network)
        first = FailureCase(name="same", kind="link", failed_links=("A->B",))
        second = FailureCase(name="same", kind="link", failed_links=("C->D",))
        engine.routing_for(first)
        _, result = engine.routing_for(second)
        assert result.failed_links == ("C->D",)
        assert not result.is_feasible  # the bridge failure partitions

    def test_unknown_elements_raise_planning_error(self, dumbbell_network):
        from repro.errors import PlanningError

        engine = WhatIfEngine(dumbbell_network)
        case = FailureCase(name="link:X", kind="link", failed_links=("X->Y",))
        with pytest.raises(PlanningError):
            engine.routing_for(case)

    def test_cache_is_bounded(self, dumbbell_network):
        engine = WhatIfEngine(dumbbell_network, cache_size=2)
        cases = enumerate_failures(dumbbell_network, kinds=("link",))[:4]
        for case in cases:
            engine.routing_for(case)
        assert len(engine._case_cache) == 2

    def test_worst_case_picks_binding_failure(self, dumbbell_scenario):
        engine = dumbbell_scenario.planning()
        truth = dumbbell_scenario.busy_mean_matrix()
        cases = enumerate_failures(dumbbell_scenario.network, kinds=("link",))
        worst = engine.worst_case(truth, cases=cases, feasible_only=True)
        projections = [
            engine.project(truth, case)
            for case in cases
        ]
        feasible = [p for p in projections if p.is_feasible]
        assert worst.max_utilisation == max(p.max_utilisation for p in feasible)

    def test_scenario_planning_entry_point(self, dumbbell_scenario):
        engine = dumbbell_scenario.planning(utilisation_threshold=0.5)
        assert isinstance(engine, WhatIfEngine)
        assert engine.utilisation_threshold == 0.5
        np.testing.assert_array_equal(
            engine.base_routing.matrix, dumbbell_scenario.routing.matrix
        )
