"""Failure-sweep tests: record structure, partitions, serial == parallel."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.evaluation import MethodSpec
from repro.planning import (
    FailureCase,
    enumerate_failures,
    failure_sweep,
    planning_summary_table,
    utilisation_error_profile,
)

SPECS = (
    MethodSpec(label="gravity", estimator="gravity"),
    MethodSpec(
        label="tomogravity",
        estimator="entropy",
        params={"regularization": 1000.0, "prior": "gravity"},
    ),
)


class TestFailureSweep:
    def test_records_cover_cases_times_methods(self, dumbbell_scenario):
        cases = enumerate_failures(dumbbell_scenario.network, kinds=("link",))[:5]
        records = failure_sweep(dumbbell_scenario, specs=SPECS, cases=cases)
        assert len(records) == len(cases) * len(SPECS)
        assert [r.case for r in records[:2]] == [cases[0].name] * 2
        assert {r.method for r in records} == {"gravity", "tomogravity"}

    def test_baseline_included_by_default(self, dumbbell_scenario):
        records = failure_sweep(dumbbell_scenario, specs=SPECS)
        assert records[0].case == "baseline"
        assert records[0].kind == "baseline"
        # baseline + every single-link failure
        assert len(records) == (dumbbell_scenario.network.num_links + 1) * len(SPECS)

    def test_partition_yields_structured_infeasible_record(self, dumbbell_scenario):
        case = FailureCase(
            name="link-pair:C<->D", kind="link-pair", failed_links=("C->D", "D->C")
        )
        records = failure_sweep(dumbbell_scenario, specs=SPECS, cases=[case])
        assert len(records) == len(SPECS)
        for record in records:
            assert not record.feasible
            assert not record.skipped
            assert record.num_infeasible_pairs == 18  # all cross-triangle demands
            assert record.lost_traffic > 0
            # The numbers stay well-defined (surviving traffic only).
            assert math.isfinite(record.true_max_utilisation)

    def test_skipped_method_records_error(self, dumbbell_scenario):
        specs = (
            MethodSpec(label="gravity", estimator="gravity"),
            MethodSpec(label="broken", estimator="vardi", params={"poisson_weight": -1.0}),
        )
        cases = enumerate_failures(dumbbell_scenario.network, kinds=("link",))[:2]
        records = failure_sweep(dumbbell_scenario, specs=specs, cases=cases)
        broken = [r for r in records if r.method == "broken"]
        assert len(broken) == len(cases)
        for record in broken:
            assert record.skipped and record.error
            assert math.isnan(record.predicted_max_utilisation)
            assert math.isnan(record.max_utilisation_error)
        # The healthy method is unaffected.
        assert all(not r.skipped for r in records if r.method == "gravity")

    def test_skip_errors_false_raises(self, dumbbell_scenario):
        from repro.errors import ReproError

        specs = (MethodSpec(label="broken", estimator="vardi", params={"poisson_weight": -1.0}),)
        with pytest.raises(ReproError):
            failure_sweep(dumbbell_scenario, specs=specs, skip_errors=False)

    def test_growth_scales_utilisations(self, dumbbell_scenario):
        cases = enumerate_failures(dumbbell_scenario.network, kinds=("link",))[:3]
        base = failure_sweep(dumbbell_scenario, specs=SPECS, cases=cases)
        grown = failure_sweep(dumbbell_scenario, specs=SPECS, cases=cases, growth=2.0)
        for a, b in zip(base, grown):
            assert b.true_max_utilisation == pytest.approx(2 * a.true_max_utilisation)
            assert b.predicted_max_utilisation == pytest.approx(
                2 * a.predicted_max_utilisation
            )

    def test_serial_equals_parallel(self, dumbbell_scenario):
        serial = failure_sweep(dumbbell_scenario, specs=SPECS, n_jobs=1)
        parallel = failure_sweep(dumbbell_scenario, specs=SPECS, n_jobs=4)
        assert serial == parallel

    def test_serial_equals_parallel_with_partitions_and_skips(self, dumbbell_scenario):
        specs = SPECS + (
            MethodSpec(label="broken", estimator="vardi", params={"poisson_weight": -1.0}),
        )
        cases = enumerate_failures(
            dumbbell_scenario.network, kinds=("link", "link-pair", "node")
        )
        serial = failure_sweep(dumbbell_scenario, specs=specs, cases=cases, n_jobs=1)
        parallel = failure_sweep(dumbbell_scenario, specs=specs, cases=cases, n_jobs=3)
        # NaN != NaN, so compare records field-by-field.
        assert len(serial) == len(parallel)
        for a, b in zip(serial, parallel):
            assert (a.scenario, a.method, a.case, a.kind) == (
                b.scenario,
                b.method,
                b.case,
                b.kind,
            )
            assert a.feasible == b.feasible and a.error == b.error
            for field in (
                "num_infeasible_pairs",
                "lost_traffic",
                "predicted_max_utilisation",
                "true_max_utilisation",
                "max_utilisation_error",
                "mean_utilisation_error",
                "congestion_hits",
                "congestion_misses",
                "congestion_false_alarms",
            ):
                left, right = getattr(a, field), getattr(b, field)
                assert left == right or (
                    isinstance(left, float) and math.isnan(left) and math.isnan(right)
                ), field


class TestAggregation:
    @pytest.fixture
    def records(self, dumbbell_scenario):
        cases = enumerate_failures(
            dumbbell_scenario.network, kinds=("link", "link-pair"), include_baseline=True
        )
        return failure_sweep(dumbbell_scenario, specs=SPECS, cases=cases)

    def test_summary_table_layout(self, records):
        table = planning_summary_table(records)
        assert set(table) == {"gravity", "tomogravity"}
        summary = table["gravity"]
        assert summary["cases"] == len(records) / 2
        # The two bridge-direction failures and the bridge pair partition.
        assert summary["infeasible_cases"] == 3.0
        assert summary["skipped_cases"] == 0.0
        assert 0 <= summary["mean_max_utilisation_error"]
        assert summary["mean_max_utilisation_error"] <= summary["worst_max_utilisation_error"]
        # No link crosses the default 0.9 threshold on this scenario, so the
        # congestion scores are undefined rather than a vacuous 100 %.
        assert math.isnan(summary["congestion_recall"])
        assert math.isnan(summary["congestion_precision"])

    def test_congestion_scores_with_positives(self, dumbbell_scenario):
        # The bridge carries every cross-triangle demand; a low threshold
        # makes it a true congestion positive that both methods must flag.
        cases = enumerate_failures(dumbbell_scenario.network, kinds=("link",))[:3]
        records = failure_sweep(
            dumbbell_scenario, specs=SPECS, cases=cases, utilisation_threshold=0.3
        )
        table = planning_summary_table(records)
        for summary in table.values():
            assert 0 <= summary["congestion_recall"] <= 1
            assert 0 <= summary["congestion_precision"] <= 1
        assert any(r.congestion_hits + r.congestion_misses > 0 for r in records)

    def test_profile_sorted_by_true_utilisation(self, records):
        profile = utilisation_error_profile(records)
        for method, series in profile.items():
            trues = series["true_max_utilisation"]
            assert np.all(np.diff(trues) <= 1e-12)
            np.testing.assert_allclose(
                series["max_utilisation_error"],
                np.abs(series["predicted_max_utilisation"] - trues),
            )

    def test_infeasible_cases_excluded_from_profile(self, records):
        profile = utilisation_error_profile(records)
        feasible_count = sum(
            1 for r in records if r.method == "gravity" and r.feasible and not r.skipped
        )
        assert len(profile["gravity"]["case"]) == feasible_count
