"""Tests for diurnal traffic profiles."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import TrafficError
from repro.traffic import (
    FIVE_MINUTES,
    SECONDS_PER_DAY,
    DiurnalProfile,
    american_profile,
    european_profile,
    flat_profile,
)


class TestDiurnalProfile:
    def test_levels_bounded_and_peak_normalised(self):
        profile = DiurnalProfile(peak_hour=20.0, trough_ratio=0.3)
        samples = profile.sample_day()
        assert samples.shape == (288,)
        assert samples.max() == pytest.approx(1.0, abs=1e-6)
        assert samples.min() >= 0.2

    def test_peak_occurs_near_configured_hour(self):
        profile = DiurnalProfile(peak_hour=20.0, trough_ratio=0.3, sharpness=3.0)
        assert profile.busy_hour() == pytest.approx(20.0, abs=0.5)

    def test_scalar_and_array_evaluation_agree(self):
        profile = european_profile()
        times = np.array([0.0, 3600.0, 7200.0])
        array_levels = profile.level(times)
        scalar_levels = [profile.level(float(t)) for t in times]
        assert np.allclose(array_levels, scalar_levels)

    def test_periodicity(self):
        profile = american_profile()
        assert profile.level(1000.0) == pytest.approx(profile.level(1000.0 + SECONDS_PER_DAY))

    def test_shifted_moves_peak(self):
        profile = DiurnalProfile(peak_hour=10.0, trough_ratio=0.3, sharpness=3.0)
        shifted = profile.shifted(5.0)
        assert shifted.busy_hour() == pytest.approx(15.0, abs=0.5)

    def test_morning_bump_adds_secondary_plateau(self):
        base = DiurnalProfile(peak_hour=20.0, trough_ratio=0.2, sharpness=3.0)
        bumped = DiurnalProfile(
            peak_hour=20.0, trough_ratio=0.2, sharpness=3.0, morning_hour=9.0, morning_ratio=0.9
        )
        nine_am = 9 * 3600.0
        assert bumped.level(nine_am) > base.level(nine_am)

    def test_sampling_interval_validation(self):
        with pytest.raises(TrafficError):
            flat_profile().sample_day(interval_seconds=0.0)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"peak_hour": 25.0},
            {"trough_ratio": 0.0},
            {"trough_ratio": 1.5},
            {"sharpness": 0.0},
            {"morning_hour": 30.0},
            {"morning_ratio": 2.0},
        ],
    )
    def test_invalid_parameters_rejected(self, kwargs):
        with pytest.raises(TrafficError):
            DiurnalProfile(**kwargs)


class TestRegionProfiles:
    def test_busy_periods_differ_but_overlap_around_18_gmt(self):
        """Reproduces the qualitative structure of the paper's Figure 1."""
        europe = european_profile()
        america = american_profile()
        assert europe.busy_hour() != america.busy_hour()
        # Around 18:00 GMT both regions carry a large share of their peak.
        evening = 18 * 3600.0
        assert europe.level(evening) > 0.7
        assert america.level(evening) > 0.7

    def test_flat_profile_is_nearly_constant(self):
        samples = flat_profile().sample_day()
        assert samples.min() > 0.95

    def test_five_minute_constant(self):
        assert FIVE_MINUTES == 300.0
        assert SECONDS_PER_DAY == 86400
