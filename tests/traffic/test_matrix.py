"""Tests for TrafficMatrix and TrafficMatrixSeries."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import TrafficError
from repro.topology import NodePair
from repro.traffic import TrafficMatrix, TrafficMatrixSeries


PAIRS = (
    NodePair("A", "B"),
    NodePair("B", "A"),
    NodePair("A", "C"),
    NodePair("C", "A"),
    NodePair("B", "C"),
    NodePair("C", "B"),
)


def matrix(values) -> TrafficMatrix:
    return TrafficMatrix(PAIRS, values)


class TestConstruction:
    def test_basic_access(self):
        tm = matrix([10, 20, 30, 0, 5, 5])
        assert tm.total == pytest.approx(70)
        assert tm.demand(NodePair("A", "C")) == 30
        assert tm[NodePair("B", "A")] == 20
        assert len(tm) == 6
        assert dict(iter(tm))[NodePair("B", "C")] == 5

    def test_negative_values_rejected(self):
        with pytest.raises(TrafficError):
            matrix([1, 2, 3, 4, 5, -1])

    def test_length_mismatch_rejected(self):
        with pytest.raises(TrafficError):
            TrafficMatrix(PAIRS, [1, 2])

    def test_duplicate_pairs_rejected(self):
        with pytest.raises(TrafficError):
            TrafficMatrix((NodePair("A", "B"), NodePair("A", "B")), [1, 2])

    def test_from_mapping_fills_missing_with_zero(self):
        tm = TrafficMatrix.from_mapping(PAIRS, {NodePair("A", "B"): 7.0})
        assert tm.demand(NodePair("A", "B")) == 7.0
        assert tm.demand(NodePair("C", "B")) == 0.0

    def test_from_mapping_strict_rejects_unknown_pairs(self):
        with pytest.raises(TrafficError):
            TrafficMatrix.from_mapping(PAIRS[:2], {NodePair("A", "C"): 1.0}, strict=True)

    def test_zeros_and_unknown_pair_lookup(self):
        tm = TrafficMatrix.zeros(PAIRS)
        assert tm.total == 0.0
        with pytest.raises(TrafficError):
            tm.demand(NodePair("X", "Y"))

    def test_vector_is_read_only(self):
        tm = matrix([1, 2, 3, 4, 5, 6])
        with pytest.raises(ValueError):
            tm.vector[0] = 99.0

    def test_round_trip_mapping(self):
        tm = matrix([1, 2, 3, 4, 5, 6])
        rebuilt = TrafficMatrix.from_mapping(PAIRS, tm.to_mapping())
        assert np.allclose(rebuilt.vector, tm.vector)


class TestAggregates:
    def test_origin_and_destination_totals(self):
        tm = matrix([10, 20, 30, 0, 5, 5])
        assert tm.origin_totals() == {"A": 40, "B": 25, "C": 5}
        assert tm.destination_totals() == {"B": 15, "A": 20, "C": 35}

    def test_dense_view(self):
        tm = matrix([10, 20, 30, 0, 5, 5])
        names, dense = tm.to_dense()
        index = {name: i for i, name in enumerate(names)}
        assert dense[index["A"], index["B"]] == 10
        assert dense[index["C"], index["A"]] == 0
        assert np.trace(dense) == 0.0

    def test_distribution_sums_to_one(self):
        tm = matrix([10, 20, 30, 0, 5, 5])
        assert tm.as_distribution().sum() == pytest.approx(1.0)

    def test_distribution_of_zero_matrix_rejected(self):
        with pytest.raises(TrafficError):
            TrafficMatrix.zeros(PAIRS).as_distribution()

    def test_fanouts_sum_to_one_per_origin(self):
        tm = matrix([10, 20, 30, 0, 5, 5])
        fanouts = tm.fanouts()
        for origin in ("A", "B", "C"):
            share = sum(v for pair, v in fanouts.items() if pair.origin == origin)
            assert share == pytest.approx(1.0)

    def test_fanouts_of_zero_origin_are_uniform(self):
        tm = matrix([0, 20, 0, 0, 5, 5])
        fanouts = tm.fanouts()
        assert fanouts[NodePair("A", "B")] == pytest.approx(0.5)
        assert fanouts[NodePair("A", "C")] == pytest.approx(0.5)

    def test_fanout_vector_matches_mapping(self):
        tm = matrix([10, 20, 30, 0, 5, 5])
        vector = tm.fanout_vector()
        fanouts = tm.fanouts()
        assert np.allclose(vector, [fanouts[pair] for pair in PAIRS])


class TestRankingHelpers:
    def test_top_demands(self):
        tm = matrix([10, 20, 30, 0, 5, 5])
        assert tm.top_demands(2) == (NodePair("A", "C"), NodePair("B", "A"))
        with pytest.raises(TrafficError):
            tm.top_demands(-1)

    def test_threshold_for_traffic_fraction(self):
        tm = matrix([50, 30, 10, 5, 3, 2])
        threshold = tm.threshold_for_traffic_fraction(0.8)
        retained = [v for v in tm.vector if v >= threshold]
        assert sum(retained) >= 0.8 * tm.total
        with pytest.raises(TrafficError):
            tm.threshold_for_traffic_fraction(0.0)

    def test_demands_above(self):
        tm = matrix([50, 30, 10, 5, 3, 2])
        assert set(tm.demands_above(9)) == {NodePair("A", "B"), NodePair("B", "A"), NodePair("A", "C")}

    def test_cumulative_distribution_is_monotone(self):
        tm = matrix([50, 30, 10, 5, 3, 2])
        ranks, cumulative = tm.cumulative_distribution()
        assert ranks[-1] == pytest.approx(1.0)
        assert cumulative[-1] == pytest.approx(1.0)
        assert np.all(np.diff(cumulative) >= 0)


class TestArithmetic:
    def test_scaled(self):
        tm = matrix([1, 2, 3, 4, 5, 6]).scaled(2.0)
        assert tm.total == pytest.approx(42)
        with pytest.raises(TrafficError):
            tm.scaled(-1.0)

    def test_addition_requires_same_pairs(self):
        a = matrix([1, 2, 3, 4, 5, 6])
        b = matrix([6, 5, 4, 3, 2, 1])
        assert np.allclose((a + b).vector, 7.0)
        other = TrafficMatrix(PAIRS[:2], [1, 1])
        with pytest.raises(TrafficError):
            a + other

    def test_with_values(self):
        tm = matrix([1, 2, 3, 4, 5, 6]).with_values([0, 0, 0, 0, 0, 1])
        assert tm.total == 1.0


class TestSeries:
    def build_series(self, num=5) -> TrafficMatrixSeries:
        snapshots = [matrix(np.arange(6) + k) for k in range(num)]
        return TrafficMatrixSeries(snapshots, interval_seconds=300.0, start_time_seconds=600.0)

    def test_basic_properties(self):
        series = self.build_series()
        assert len(series) == 5
        assert series[0].total == pytest.approx(15)
        assert series.as_array().shape == (5, 6)
        assert np.allclose(series.timestamps(), 600 + 300 * np.arange(5))

    def test_empty_series_rejected(self):
        with pytest.raises(TrafficError):
            TrafficMatrixSeries([])

    def test_inconsistent_pairs_rejected(self):
        bad = TrafficMatrix(PAIRS[:2], [1, 1])
        with pytest.raises(TrafficError):
            TrafficMatrixSeries([matrix([1] * 6), bad])

    def test_non_positive_interval_rejected(self):
        with pytest.raises(TrafficError):
            TrafficMatrixSeries([matrix([1] * 6)], interval_seconds=0.0)

    def test_statistics(self):
        series = self.build_series()
        assert np.allclose(series.demand_means(), np.arange(6) + 2)
        assert np.allclose(series.demand_variances(), 2.0)
        assert np.allclose(series.mean_matrix().vector, np.arange(6) + 2)
        assert np.allclose(series.total_traffic_series(), [15, 21, 27, 33, 39])

    def test_fanout_series_rows_sum_to_origin_count(self):
        series = self.build_series()
        fanouts = series.fanout_series()
        # Three origins, each with fanouts summing to one -> row sums to 3.
        assert np.allclose(fanouts.sum(axis=1), 3.0)

    def test_window_and_busy_window(self):
        series = self.build_series()
        window = series.window(1, 2)
        assert len(window) == 2
        assert window.start_time_seconds == pytest.approx(900.0)
        busy = series.busy_window(2)
        # Totals increase monotonically, so the busy window is the last two.
        assert np.allclose(busy.total_traffic_series(), [33, 39])

    def test_window_bounds_checked(self):
        series = self.build_series()
        with pytest.raises(TrafficError):
            series.window(4, 3)
        with pytest.raises(TrafficError):
            series.window(0, 0)
        with pytest.raises(TrafficError):
            series.busy_window(10)
        with pytest.raises(TrafficError):
            series.busy_window(0)
