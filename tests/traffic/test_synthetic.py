"""Tests for the synthetic traffic generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import TrafficError
from repro.topology import random_backbone
from repro.traffic import (
    ScalingLaw,
    SyntheticTrafficConfig,
    SyntheticTrafficModel,
    base_demand_matrix,
    european_profile,
    poisson_series,
    scaling_law_from_series,
)


@pytest.fixture(scope="module")
def network():
    return random_backbone(8, avg_degree=3.0, seed=5)


class TestConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"total_traffic_mbps": 0.0},
            {"top_fraction": 0.0},
            {"top_share": 1.5},
            {"top_fraction": 0.5, "top_share": 0.3},
            {"gravity_distortion": -1.0},
            {"fanout_jitter": -0.1},
            {"origin_phase_spread_hours": -1.0},
        ],
    )
    def test_invalid_config_rejected(self, kwargs):
        with pytest.raises(TrafficError):
            SyntheticTrafficConfig(**kwargs)


class TestBaseMatrix:
    def test_total_traffic_matches_config(self, network):
        config = SyntheticTrafficConfig(total_traffic_mbps=5000.0)
        base = base_demand_matrix(network, config, seed=1)
        assert base.total == pytest.approx(5000.0, rel=1e-9)
        assert np.all(base.vector >= 0)

    def test_concentration_target_hit(self, network):
        config = SyntheticTrafficConfig(top_fraction=0.2, top_share=0.8)
        base = base_demand_matrix(network, config, seed=2)
        values = np.sort(base.vector)[::-1]
        top = values[: max(1, int(round(0.2 * len(values))))]
        assert top.sum() / values.sum() == pytest.approx(0.8, abs=0.05)

    def test_deterministic_for_seed(self, network):
        config = SyntheticTrafficConfig()
        first = base_demand_matrix(network, config, seed=3)
        second = base_demand_matrix(network, config, seed=3)
        assert np.allclose(first.vector, second.vector)

    def test_distortion_increases_gravity_violation(self, network):
        mild = base_demand_matrix(
            network, SyntheticTrafficConfig(gravity_distortion=0.1), seed=4
        )
        wild = base_demand_matrix(
            network, SyntheticTrafficConfig(gravity_distortion=2.0), seed=4
        )

        def gravity_correlation(matrix):
            origin = matrix.origin_totals()
            destination = matrix.destination_totals()
            total = matrix.total
            predicted = np.array(
                [origin[p.origin] * destination[p.destination] / total for p in matrix.pairs]
            )
            return np.corrcoef(predicted, matrix.vector)[0, 1]

        assert gravity_correlation(mild) > gravity_correlation(wild)


class TestSyntheticModel:
    def test_generate_day_has_288_samples(self, network):
        config = SyntheticTrafficConfig(total_traffic_mbps=3000.0)
        base = base_demand_matrix(network, config, seed=6)
        model = SyntheticTrafficModel(network, base, european_profile(), config, seed=6)
        day = model.generate_day()
        assert len(day) == 288
        assert day.interval_seconds == 300.0

    def test_diurnal_cycle_visible_in_totals(self, network):
        config = SyntheticTrafficConfig(total_traffic_mbps=3000.0)
        base = base_demand_matrix(network, config, seed=7)
        model = SyntheticTrafficModel(network, base, european_profile(), config, seed=7)
        totals = model.generate_day().total_traffic_series()
        assert totals.max() > 2.0 * totals.min()

    def test_fanouts_more_stable_than_demands(self, network):
        """The paper's Figure 4/5 property: fanout CoV below demand CoV."""
        config = SyntheticTrafficConfig(total_traffic_mbps=3000.0, fanout_jitter=0.02)
        base = base_demand_matrix(network, config, seed=8)
        model = SyntheticTrafficModel(network, base, european_profile(), config, seed=8)
        day = model.generate_day()
        array = day.as_array()
        fanouts = day.fanout_series()
        means = array.mean(axis=0)
        largest = np.argsort(means)[-10:]
        demand_cov = array[:, largest].std(axis=0) / array[:, largest].mean(axis=0)
        fanout_cov = fanouts[:, largest].std(axis=0) / fanouts[:, largest].mean(axis=0)
        assert fanout_cov.mean() < demand_cov.mean()

    def test_scaling_law_recovered_from_busy_window(self, network):
        config = SyntheticTrafficConfig(
            total_traffic_mbps=5000.0, scaling_law=ScalingLaw(phi=1.0, c=1.5)
        )
        base = base_demand_matrix(network, config, seed=9)
        model = SyntheticTrafficModel(network, base, european_profile(), config, seed=9)
        busy = model.generate_series(60, start_time_seconds=19.5 * 3600)
        law = scaling_law_from_series(busy)
        assert law.c == pytest.approx(1.5, abs=0.35)

    def test_mismatched_base_matrix_rejected(self, network):
        config = SyntheticTrafficConfig()
        other = random_backbone(5, seed=1)
        base = base_demand_matrix(other, config, seed=1)
        with pytest.raises(TrafficError):
            SyntheticTrafficModel(network, base, config=config)

    def test_generate_series_validation(self, network):
        config = SyntheticTrafficConfig()
        base = base_demand_matrix(network, config, seed=10)
        model = SyntheticTrafficModel(network, base, config=config, seed=10)
        with pytest.raises(TrafficError):
            model.generate_series(0)
        with pytest.raises(TrafficError):
            model.generate_day(interval_seconds=0.0)


class TestPoissonSeries:
    def test_mean_matches_intensities(self, network):
        config = SyntheticTrafficConfig(total_traffic_mbps=50_000.0)
        base = base_demand_matrix(network, config, seed=11)
        series = poisson_series(base, 400, seed=11)
        assert len(series) == 400
        means = series.demand_means()
        large = base.vector > 100.0
        assert np.allclose(means[large], base.vector[large], rtol=0.1)

    def test_variance_close_to_mean(self, network):
        config = SyntheticTrafficConfig(total_traffic_mbps=50_000.0)
        base = base_demand_matrix(network, config, seed=12)
        series = poisson_series(base, 600, seed=12)
        large = base.vector > 500.0
        ratio = series.demand_variances()[large] / base.vector[large]
        assert np.median(ratio) == pytest.approx(1.0, abs=0.25)

    def test_invalid_sample_count_rejected(self, network):
        base = base_demand_matrix(network, SyntheticTrafficConfig(), seed=13)
        with pytest.raises(TrafficError):
            poisson_series(base, 0)
