"""Tests for the mean-variance scaling law."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import TrafficError
from repro.topology import NodePair
from repro.traffic import (
    ScalingLaw,
    TrafficMatrix,
    TrafficMatrixSeries,
    fit_scaling_law,
    scaling_law_from_series,
)


class TestScalingLaw:
    def test_variance_prediction(self):
        law = ScalingLaw(phi=2.0, c=1.5)
        assert law.variance(4.0) == pytest.approx(16.0)
        assert np.allclose(law.variance(np.array([1.0, 4.0])), [2.0, 16.0])
        assert law.standard_deviation(4.0) == pytest.approx(4.0)

    def test_poisson_special_case(self):
        law = ScalingLaw.poisson()
        assert law.variance(7.0) == pytest.approx(7.0)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(TrafficError):
            ScalingLaw(phi=0.0, c=1.0)
        with pytest.raises(TrafficError):
            ScalingLaw(phi=1.0, c=1.0).variance(-1.0)

    def test_sampling_respects_law(self):
        law = ScalingLaw(phi=1.0, c=1.0)
        means = np.array([100.0, 400.0, 900.0])
        rng = np.random.default_rng(0)
        draws = law.sample(means, size=4000, rng=rng)
        assert draws.shape == (4000, 3)
        assert np.all(draws >= 0)
        sample_var = draws.var(axis=0)
        assert np.allclose(sample_var, means, rtol=0.15)

    def test_sampling_validation(self):
        law = ScalingLaw(phi=1.0, c=1.0)
        rng = np.random.default_rng(0)
        with pytest.raises(TrafficError):
            law.sample(np.ones((2, 2)), size=10, rng=rng)
        with pytest.raises(TrafficError):
            law.sample(np.ones(3), size=0, rng=rng)


class TestFit:
    def test_recovers_known_parameters(self):
        law = ScalingLaw(phi=0.8, c=1.6)
        means = np.logspace(0, 4, 50)
        variances = law.variance(means)
        fitted = fit_scaling_law(means, variances)
        assert fitted.phi == pytest.approx(0.8, rel=1e-6)
        assert fitted.c == pytest.approx(1.6, rel=1e-6)

    def test_recovers_parameters_with_noise(self):
        rng = np.random.default_rng(42)
        law = ScalingLaw(phi=2.4, c=1.5)
        means = np.logspace(0, 5, 200)
        variances = law.variance(means) * rng.lognormal(0.0, 0.2, size=len(means))
        fitted = fit_scaling_law(means, variances)
        assert fitted.c == pytest.approx(1.5, abs=0.1)

    def test_zero_entries_are_excluded(self):
        means = np.array([0.0, 1.0, 10.0, 100.0])
        variances = np.array([0.0, 1.0, 10.0, 100.0])
        fitted = fit_scaling_law(means, variances)
        assert fitted.c == pytest.approx(1.0, abs=1e-6)

    def test_too_few_points_rejected(self):
        with pytest.raises(TrafficError):
            fit_scaling_law(np.array([1.0]), np.array([1.0]))
        with pytest.raises(TrafficError):
            fit_scaling_law(np.array([0.0, 0.0]), np.array([0.0, 0.0]))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(TrafficError):
            fit_scaling_law(np.ones(3), np.ones(4))


class TestFitFromSeries:
    def test_series_fit_matches_direct_fit(self):
        pairs = (NodePair("A", "B"), NodePair("B", "A"), NodePair("A", "C"), NodePair("C", "A"))
        rng = np.random.default_rng(1)
        law = ScalingLaw(phi=1.0, c=1.5)
        means = np.array([10.0, 100.0, 1000.0, 5000.0])
        draws = law.sample(means, size=400, rng=rng)
        series = TrafficMatrixSeries([TrafficMatrix(pairs, row) for row in draws])
        fitted = scaling_law_from_series(series)
        assert fitted.c == pytest.approx(1.5, abs=0.25)
