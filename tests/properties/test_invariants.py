"""Property-based tests (hypothesis) for core data structures and invariants."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.optimize import (
    generalized_iterative_scaling,
    kl_divergence,
    kruithof_scaling,
    nnls_projected_gradient,
    nonnegative_quadratic_program,
)
from repro.routing import ShortestPathRouter, build_routing_matrix
from repro.topology import NodePair, random_backbone
from repro.traffic import ScalingLaw, TrafficMatrix, fit_scaling_law

SETTINGS = settings(
    max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)

PAIRS = tuple(NodePair(f"N{i}", f"N{j}") for i in range(4) for j in range(4) if i != j)

demand_vectors = hnp.arrays(
    dtype=float,
    shape=len(PAIRS),
    elements=st.floats(min_value=0.0, max_value=1e6, allow_nan=False, allow_infinity=False),
)


class TestTrafficMatrixProperties:
    @SETTINGS
    @given(values=demand_vectors)
    def test_total_is_sum_and_scaling_is_linear(self, values):
        matrix = TrafficMatrix(PAIRS, values)
        assert matrix.total == pytest.approx(values.sum(), rel=1e-12, abs=1e-9)
        doubled = matrix.scaled(2.0)
        assert doubled.total == pytest.approx(2.0 * matrix.total, rel=1e-12, abs=1e-9)

    @SETTINGS
    @given(values=demand_vectors)
    def test_fanouts_form_probability_distributions(self, values):
        matrix = TrafficMatrix(PAIRS, values)
        fanouts = matrix.fanouts()
        assert all(v >= 0 for v in fanouts.values())
        for origin in {pair.origin for pair in PAIRS}:
            share = sum(v for pair, v in fanouts.items() if pair.origin == origin)
            assert share == pytest.approx(1.0, abs=1e-9)

    @SETTINGS
    @given(values=demand_vectors)
    def test_distribution_normalisation(self, values):
        matrix = TrafficMatrix(PAIRS, values)
        if matrix.total > 0:
            assert matrix.as_distribution().sum() == pytest.approx(1.0, abs=1e-9)

    @SETTINGS
    @given(values=demand_vectors, fraction=st.floats(min_value=0.05, max_value=1.0))
    def test_threshold_rule_covers_requested_fraction(self, values, fraction):
        matrix = TrafficMatrix(PAIRS, values)
        if matrix.total == 0:
            return
        threshold = matrix.threshold_for_traffic_fraction(fraction)
        covered = values[values >= threshold].sum()
        assert covered >= fraction * matrix.total - 1e-9

    @SETTINGS
    @given(values=demand_vectors)
    def test_origin_totals_consistent_with_dense_view(self, values):
        matrix = TrafficMatrix(PAIRS, values)
        names, dense = matrix.to_dense()
        origin_totals = matrix.origin_totals()
        for i, name in enumerate(names):
            if name in origin_totals:
                assert dense[i].sum() == pytest.approx(origin_totals[name], rel=1e-12, abs=1e-9)


class TestRoutingProperties:
    @SETTINGS
    @given(
        num_nodes=st.integers(min_value=3, max_value=8),
        seed=st.integers(min_value=0, max_value=1000),
    )
    def test_routing_matrix_is_binary_and_paths_connect(self, num_nodes, seed):
        network = random_backbone(num_nodes, avg_degree=2.5, seed=seed)
        routing = build_routing_matrix(network)
        assert set(np.unique(routing.matrix)) <= {0.0, 1.0}
        # Every column must contain at least one link (demands traverse >= 1 link).
        assert np.all(routing.matrix.sum(axis=0) >= 1.0)

    @SETTINGS
    @given(
        num_nodes=st.integers(min_value=3, max_value=8),
        seed=st.integers(min_value=0, max_value=1000),
    )
    def test_shortest_path_cost_is_symmetric_for_symmetric_metrics(self, num_nodes, seed):
        network = random_backbone(num_nodes, avg_degree=2.5, seed=seed)
        router = ShortestPathRouter(network)
        pairs = network.node_pairs()
        for pair in pairs[: min(6, len(pairs))]:
            forward = router.shortest_path(pair).cost
            backward = router.shortest_path(pair.reversed()).cost
            assert forward == pytest.approx(backward, rel=1e-9)


class TestSolverProperties:
    @SETTINGS
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        rows=st.integers(min_value=3, max_value=12),
        cols=st.integers(min_value=2, max_value=8),
    )
    def test_nnls_solution_is_nonnegative_and_no_worse_than_zero(self, seed, rows, cols):
        rng = np.random.default_rng(seed)
        A = rng.normal(size=(rows, cols))
        b = rng.normal(size=rows)
        result = nnls_projected_gradient(A, b, max_iterations=3000)
        assert np.all(result.x >= 0)
        assert result.residual_norm <= np.linalg.norm(b) + 1e-8

    @SETTINGS
    @given(seed=st.integers(min_value=0, max_value=10_000), size=st.integers(min_value=2, max_value=6))
    def test_nonnegative_qp_never_beats_unconstrained_optimum(self, seed, size):
        rng = np.random.default_rng(seed)
        root = rng.normal(size=(size, size))
        G = root.T @ root + 0.1 * np.eye(size)
        h = rng.normal(size=size)
        result = nonnegative_quadratic_program(G, h)
        unconstrained = np.linalg.solve(G, h)
        unconstrained_value = float(unconstrained @ G @ unconstrained - 2 * h @ unconstrained)
        assert result.objective >= unconstrained_value - 1e-6
        assert np.all(result.x >= 0)

    @SETTINGS
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        rows=st.integers(min_value=2, max_value=5),
        cols=st.integers(min_value=2, max_value=5),
    )
    def test_kruithof_preserves_zero_pattern_and_hits_targets(self, seed, rows, cols):
        rng = np.random.default_rng(seed)
        prior = rng.uniform(0.5, 2.0, size=(rows, cols))
        prior[rng.uniform(size=(rows, cols)) < 0.2] = 0.0
        if np.any(prior.sum(axis=1) == 0) or np.any(prior.sum(axis=0) == 0):
            return
        truth = prior * rng.uniform(0.5, 2.0, size=(rows, cols))
        row_targets = truth.sum(axis=1)
        column_targets = truth.sum(axis=0)
        result = kruithof_scaling(prior, row_targets, column_targets)
        assert np.all(result.values[prior == 0] == 0)
        if result.converged:
            assert np.allclose(result.values.sum(axis=1), row_targets, rtol=1e-4)

    @SETTINGS
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_kl_divergence_nonnegative(self, seed):
        rng = np.random.default_rng(seed)
        values = rng.uniform(0.0, 10.0, size=8)
        prior = rng.uniform(0.1, 10.0, size=8)
        assert kl_divergence(values, prior) >= -1e-9

    @SETTINGS
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_gis_projection_reduces_constraint_violation(self, seed):
        rng = np.random.default_rng(seed)
        routing = (rng.uniform(size=(3, 6)) < 0.5).astype(float)
        routing[0] = 1.0  # ensure no empty rows
        truth = rng.uniform(0.5, 5.0, size=6)
        target = routing @ truth
        prior = rng.uniform(0.5, 5.0, size=6)
        before = float(np.max(np.abs(routing @ prior - target)))
        result = generalized_iterative_scaling(prior, routing, target)
        assert result.max_violation <= before + 1e-9


class TestScalingLawProperties:
    @SETTINGS
    @given(
        phi=st.floats(min_value=0.1, max_value=5.0),
        c=st.floats(min_value=0.5, max_value=2.5),
    )
    def test_fit_recovers_exact_law(self, phi, c):
        means = np.logspace(0, 4, 40)
        law = ScalingLaw(phi=phi, c=c)
        fitted = fit_scaling_law(means, np.asarray(law.variance(means)))
        assert fitted.c == pytest.approx(c, rel=1e-6)
        assert fitted.phi == pytest.approx(phi, rel=1e-4)
