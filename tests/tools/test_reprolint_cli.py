"""The ``python -m reprolint`` command line: exit codes and self-checks.

The CI lint job runs ``PYTHONPATH=tools python -m reprolint src benchmarks
examples`` and fails the build on exit code 1; these tests pin that
contract — including the one the whole PR rests on: the repository's own
tree lints clean.
"""

from __future__ import annotations

import os
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]
TOOLS_DIR = REPO_ROOT / "tools"


def run_cli(*arguments: str, cwd: Path = REPO_ROOT) -> subprocess.CompletedProcess:
    environment = dict(os.environ)
    environment["PYTHONPATH"] = str(TOOLS_DIR)
    return subprocess.run(
        [sys.executable, "-m", "reprolint", *arguments],
        cwd=cwd,
        env=environment,
        capture_output=True,
        text=True,
        timeout=120,
    )


PLANTED = {
    "sparse_leak.py": (
        """
        from repro.routing import RoutingMatrix

        def leak(routing: RoutingMatrix):
            return routing.toarray()
        """,
        "REPRO101",
        5,
    ),
    "unseeded.py": (
        """
        import numpy as np

        def sample():
            return np.random.default_rng()
        """,
        "REPRO201",
        5,
    ),
    "closure_pool.py": (
        """
        from repro.parallel import payload_executor

        def run(items):
            with payload_executor(4) as pool:
                return list(pool.map(lambda item: item, items))
        """,
        "REPRO301",
        6,
    ),
    "bad_estimator.py": (
        """
        from repro.estimation.base import Estimator
        from repro.estimation.registry import register

        @register()
        class Broken(Estimator):
            name = "broken"
        """,
        "REPRO401",
        6,
    ),
}


class TestExitCodes:
    def test_clean_file_exits_zero(self, tmp_path):
        clean = tmp_path / "clean.py"
        clean.write_text("def fine():\n    return 1\n")
        result = run_cli(str(clean), "--root", str(tmp_path))
        assert result.returncode == 0, result.stdout + result.stderr
        assert result.stdout.strip() == ""

    def test_planted_violations_exit_one_with_locations(self, tmp_path):
        for filename, (source, _, _) in PLANTED.items():
            (tmp_path / filename).write_text(textwrap.dedent(source))
        result = run_cli(str(tmp_path), "--root", str(tmp_path), "--no-allowlist")
        assert result.returncode == 1
        for filename, (_, code, line) in PLANTED.items():
            assert f"{filename}:{line}:" in result.stdout, (filename, result.stdout)
            assert code in result.stdout
        assert "4 violation(s)" in result.stdout

    def test_select_runs_only_named_rules(self, tmp_path):
        for filename, (source, _, _) in PLANTED.items():
            (tmp_path / filename).write_text(textwrap.dedent(source))
        result = run_cli(
            str(tmp_path), "--root", str(tmp_path), "--select", "determinism"
        )
        assert result.returncode == 1
        assert "REPRO201" in result.stdout
        assert "REPRO101" not in result.stdout

    def test_unknown_rule_exits_two(self, tmp_path):
        result = run_cli(str(tmp_path), "--select", "no-such-rule")
        assert result.returncode == 2
        assert "unknown rule" in result.stderr

    def test_missing_path_exits_two(self):
        result = run_cli("definitely/not/a/path")
        assert result.returncode == 2
        assert "no such file" in result.stderr

    def test_malformed_allowlist_exits_two(self, tmp_path):
        target = tmp_path / "clean.py"
        target.write_text("x = 1\n")
        bad = tmp_path / "allow.txt"
        bad.write_text("not enough fields\n")
        result = run_cli(
            str(target), "--root", str(tmp_path), "--allowlist", str(bad)
        )
        assert result.returncode == 2

    def test_list_rules(self):
        result = run_cli("--list-rules")
        assert result.returncode == 0
        for code in ("REPRO101", "REPRO201", "REPRO301", "REPRO401"):
            assert code in result.stdout


class TestSelfCheck:
    def test_repository_tree_is_clean(self):
        # The acceptance gate: the checked-in sources, benchmarks and
        # examples pass their own invariant checker.
        result = run_cli("src", "benchmarks", "examples")
        assert result.returncode == 0, f"reprolint found:\n{result.stdout}{result.stderr}"

    def test_allowlist_is_well_formed_and_used(self):
        from reprolint.engine import load_allowlist

        entries = load_allowlist(TOOLS_DIR / "reprolint" / "allowlist.txt")
        assert entries, "the checked-in allowlist should carry the reviewed grants"
        for entry in entries:
            assert entry.reason.strip()

    def test_tree_is_dirty_without_the_allowlist(self):
        # The grants are load-bearing: the documented dense views in the
        # routing layer are real rule hits that the allowlist reviews away.
        result = run_cli("src", "--no-allowlist")
        assert result.returncode == 1
        assert "routing" in result.stdout


@pytest.mark.slow
class TestPackaging:
    def test_cli_runs_from_any_cwd(self, tmp_path):
        target = tmp_path / "clean.py"
        target.write_text("x = 1\n")
        result = run_cli(str(target), "--root", str(tmp_path), cwd=tmp_path)
        assert result.returncode == 0
