"""The typed operator contract: RoutingOperator protocol + mypy config.

``RoutingOperator`` (``repro.routing.backends``) is the structural
interface solvers may assume of a routing matrix — products and column
selection, deliberately *without* ``toarray`` so protocol-typed code
cannot densify.  mypy enforces it in the CI lint job; these tests pin the
runtime side (the protocol is ``runtime_checkable``) and the config, and
run mypy itself when it is installed locally.
"""

from __future__ import annotations

import configparser
import shutil
import subprocess
from pathlib import Path

import numpy as np
import pytest

from repro.routing import DenseBackend, RoutingOperator, SparseBackend, make_backend

REPO_ROOT = Path(__file__).resolve().parents[2]


class TestRoutingOperatorProtocol:
    def test_backends_conform(self):
        matrix = np.array([[1.0, 0.0], [1.0, 1.0]])
        assert isinstance(DenseBackend(matrix), RoutingOperator)
        assert isinstance(SparseBackend(matrix), RoutingOperator)
        assert isinstance(make_backend(matrix), RoutingOperator)

    def test_protocol_products_agree_across_backends(self):
        matrix = np.array([[1.0, 0.0, 1.0], [0.0, 1.0, 1.0]])
        vector = np.array([2.0, 3.0, 5.0])
        loads = np.array([1.0, 4.0])
        dense: RoutingOperator = DenseBackend(matrix)
        sparse: RoutingOperator = SparseBackend(matrix)
        np.testing.assert_allclose(dense.matvec(vector), sparse.matvec(vector))
        np.testing.assert_allclose(dense.rmatvec(loads), sparse.rmatvec(loads))
        np.testing.assert_allclose(dense.gram(), sparse.gram())
        sub_dense = dense.column_select(np.array([0, 2]))
        sub_sparse = sparse.column_select(np.array([0, 2]))
        assert sub_dense.shape == sub_sparse.shape == (2, 2)

    def test_non_operators_do_not_conform(self):
        assert not isinstance(np.zeros((2, 2)), RoutingOperator)
        assert not isinstance(object(), RoutingOperator)


class TestMypyConfiguration:
    def config(self) -> configparser.ConfigParser:
        parser = configparser.ConfigParser()
        parser.read(REPO_ROOT / "mypy.ini")
        return parser

    def test_config_exists_and_scopes_the_typed_packages(self):
        parser = self.config()
        assert parser.has_section("mypy")
        packages = parser.get("mypy", "packages")
        assert "repro.routing" in packages
        assert "repro.estimation" in packages
        assert parser.get("mypy", "mypy_path") == "src"

    def test_mypy_passes_when_available(self):
        # CI installs mypy for the lint job; the test container does not
        # ship it, so this check self-skips rather than failing offline.
        if shutil.which("mypy") is None:
            pytest.skip("mypy is not installed in this environment")
        result = subprocess.run(
            [shutil.which("mypy"), "--config-file", "mypy.ini"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            timeout=600,
        )
        assert result.returncode == 0, result.stdout + result.stderr


class TestCIWiring:
    def test_lint_job_runs_reprolint_and_mypy(self):
        workflow = (REPO_ROOT / ".github" / "workflows" / "ci.yml").read_text()
        assert "lint:" in workflow
        assert "python -m reprolint src benchmarks examples" in workflow
        assert "mypy --config-file mypy.ini" in workflow
