"""The shared benchmark-record helper: key merging and the meta block."""

from __future__ import annotations

import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]
BENCH_DIR = REPO_ROOT / "benchmarks"
if str(BENCH_DIR) not in sys.path:
    sys.path.insert(0, str(BENCH_DIR))

from benchrecord import merge_record, record_meta  # noqa: E402


META_FIELDS = (
    "git_sha",
    "python_version",
    "numpy_version",
    "platform",
    "cpu_count",
    "recorded_at_utc",
)


def test_record_meta_fields():
    meta = record_meta()
    assert set(META_FIELDS) <= set(meta)
    assert meta["python_version"].count(".") == 2
    assert meta["cpu_count"] >= 1
    assert "T" in meta["recorded_at_utc"]  # ISO-8601 timestamp


def test_merge_preserves_existing_keys_and_stamps_meta(tmp_path):
    path = tmp_path / "BENCH_TEST.json"
    merge_record(path, "first", {"seconds": 1.5})
    merge_record(path, "second", {"seconds": 2.5})
    record = json.loads(path.read_text())
    assert record["first"] == {"seconds": 1.5}
    assert record["second"] == {"seconds": 2.5}
    assert set(META_FIELDS) <= set(record["meta"])


def test_merge_replaces_corrupt_record(tmp_path):
    path = tmp_path / "BENCH_TEST.json"
    path.write_text("{not json")
    merge_record(path, "only", {"seconds": 0.1})
    record = json.loads(path.read_text())
    assert set(record) == {"only", "meta"}
