"""Fixtures for the reprolint tool tests.

``reprolint`` lives in ``tools/`` (it is a development tool, not part of
the ``repro`` library), so the tests put that directory on ``sys.path``
themselves instead of relying on the ``PYTHONPATH=tools`` the CLI docs
and the CI lint job use.
"""

from __future__ import annotations

import sys
import textwrap
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]
TOOLS_DIR = REPO_ROOT / "tools"
if str(TOOLS_DIR) not in sys.path:
    sys.path.insert(0, str(TOOLS_DIR))


@pytest.fixture
def lint(tmp_path):
    """Run reprolint rules over an inline source snippet.

    Returns ``lint(source, rules=None, allowlist=(), path="snippet.py")``
    -> list[Diagnostic], writing the snippet to a temp file so diagnostics
    carry real paths (``path`` is relative to the temp root; rules that
    scope by location — e.g. ``telemetry``, which only checks ``src/`` —
    see it as the repo-relative path).
    """
    from reprolint.engine import run_rules
    from reprolint.rules import ALL_RULES

    def run(source: str, rules=None, allowlist=(), path="snippet.py"):
        snippet = tmp_path / path
        snippet.parent.mkdir(parents=True, exist_ok=True)
        snippet.write_text(textwrap.dedent(source))
        return run_rules(list(rules or ALL_RULES), [snippet], tmp_path, allowlist)

    return run
