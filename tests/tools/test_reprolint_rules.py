"""Per-rule behaviour of the reprolint invariant checker.

Every rule family gets three fixtures: a violating snippet (detected, with
the right line), an allowlisted variant (suppressed via an
:class:`~reprolint.engine.AllowlistEntry`), and a pragma-suppressed
variant (``# reprolint: allow[rule]``).
"""

from __future__ import annotations

import textwrap

import pytest

from reprolint.engine import AllowlistEntry, load_allowlist, parse_pragmas
from reprolint.rules import ALL_RULES, rules_by_name


def codes(diagnostics):
    return [d.code for d in diagnostics]


class TestSparseSafety:
    def test_toarray_on_annotated_parameter(self, lint):
        found = lint(
            """
            from repro.routing import RoutingMatrix

            def leak(routing: RoutingMatrix):
                return routing.toarray()
            """
        )
        assert codes(found) == ["REPRO101"]
        assert found[0].line == 5
        assert "toarray" in found[0].message

    def test_taint_propagates_through_assignments(self, lint):
        found = lint(
            """
            def leak(problem):
                sub = problem.routing.select_pairs([0, 1])
                dense = sub.toarray()
                return dense
            """
        )
        assert codes(found) == ["REPRO101"]
        assert found[0].line == 4

    def test_np_linalg_on_routing_object(self, lint):
        found = lint(
            """
            import numpy as np
            from repro.routing import make_backend

            def rank(matrix):
                backend = make_backend(matrix)
                return np.linalg.matrix_rank(backend.toarray())
            """
        )
        # Both the np.linalg call and the inner .toarray() are flagged.
        assert codes(found) == ["REPRO101", "REPRO101"]
        assert "np.linalg.matrix_rank" in found[0].message

    def test_np_asarray_on_backend_attribute(self, lint):
        found = lint(
            """
            import numpy as np

            def densify(problem):
                return np.asarray(problem.routing)
            """
        )
        assert codes(found) == ["REPRO101"]

    def test_plain_arrays_are_not_flagged(self, lint):
        assert lint(
            """
            import numpy as np

            def fine(values):
                data = np.asarray(values, dtype=float)
                return np.linalg.norm(data)
            """
        ) == []

    def test_pragma_suppresses(self, lint):
        assert lint(
            """
            def gated(backend):
                from repro.routing import make_backend
                dense_backend = make_backend(backend, backend="dense")
                return dense_backend.toarray()  # reprolint: allow[sparse-safety]
            """
        ) == []

    def test_pragma_on_line_above_suppresses(self, lint):
        assert lint(
            """
            def gated(routing_matrix):
                # reprolint: allow[sparse-safety]
                return routing_matrix.backend.toarray()
            """
        ) == []

    def test_allowlist_fragment_suppresses(self, lint):
        entry = AllowlistEntry(
            rule="sparse-safety",
            path="snippet.py",
            fragment="backend.toarray()",
            reason="documented dense view",
        )
        assert lint(
            """
            def cached(problem):
                return problem.backend.toarray()
            """,
            allowlist=[entry],
        ) == []

    def test_allowlist_does_not_leak_to_other_rules(self, lint):
        entry = AllowlistEntry(
            rule="determinism", path="snippet.py", fragment="*", reason="x"
        )
        found = lint(
            """
            def leak(problem):
                return problem.routing.toarray()
            """,
            allowlist=[entry],
        )
        assert codes(found) == ["REPRO101"]


class TestDeterminism:
    def test_unseeded_default_rng(self, lint):
        found = lint(
            """
            import numpy as np

            def sample():
                rng = np.random.default_rng()
                return rng.normal()
            """
        )
        assert codes(found) == ["REPRO201"]
        assert found[0].line == 5

    def test_default_rng_with_explicit_none_seed(self, lint):
        found = lint(
            """
            import numpy as np

            def sample(seed=None):
                return np.random.default_rng(None)
            """
        )
        assert codes(found) == ["REPRO201"]

    def test_seeded_default_rng_is_clean(self, lint):
        assert lint(
            """
            import numpy as np

            def sample(seed):
                return np.random.default_rng(seed)
            """
        ) == []

    def test_legacy_global_state_flagged_even_when_seeded(self, lint):
        found = lint(
            """
            import numpy as np

            def sample():
                np.random.seed(42)
                return np.random.normal(size=3)
            """
        )
        assert codes(found) == ["REPRO201", "REPRO201"]
        assert [d.line for d in found] == [5, 6]

    def test_unseeded_random_state(self, lint):
        found = lint(
            """
            import numpy as np

            def sample():
                return np.random.RandomState()
            """
        )
        assert codes(found) == ["REPRO201"]

    def test_repo_entry_point_without_seed(self, lint):
        found = lint(
            """
            from repro.datasets import large_scenario

            def build():
                return large_scenario(num_nodes=50)
            """
        )
        assert codes(found) == ["REPRO201"]
        assert "seed" in found[0].message

    def test_repo_entry_point_with_seed_is_clean(self, lint):
        assert lint(
            """
            from repro.datasets import large_scenario

            def build():
                return large_scenario(num_nodes=50, seed=7)
            """
        ) == []

    def test_pragma_suppresses(self, lint):
        assert lint(
            """
            import numpy as np

            def fresh_entropy():
                return np.random.default_rng()  # reprolint: allow[determinism]
            """
        ) == []

    def test_allowlist_whole_file(self, lint):
        entry = AllowlistEntry(
            rule="determinism", path="snippet.py", fragment="*", reason="demo script"
        )
        assert lint(
            """
            import numpy as np

            def sample():
                return np.random.default_rng()
            """,
            allowlist=[entry],
        ) == []


class TestPoolSafety:
    def test_lambda_submission(self, lint):
        found = lint(
            """
            from repro.parallel import payload_executor

            def run(items):
                with payload_executor(4) as pool:
                    return list(pool.map(lambda item: item + 1, items))
            """
        )
        assert codes(found) == ["REPRO301"]
        assert "lambda" in found[0].message

    def test_nested_function_submission(self, lint):
        found = lint(
            """
            from concurrent.futures import ProcessPoolExecutor

            def run(matrix, items):
                def worker(item):
                    return matrix @ item
                with ProcessPoolExecutor(4) as pool:
                    return [pool.submit(worker, item) for item in items]
            """
        )
        assert codes(found) == ["REPRO301"]
        assert "nested function" in found[0].message

    def test_bound_method_submission(self, lint):
        found = lint(
            """
            from repro.parallel import payload_executor

            def run(engine, items):
                with payload_executor(2) as pool:
                    return list(pool.map(engine.evaluate, items))
            """
        )
        assert codes(found) == ["REPRO301"]

    def test_module_level_worker_is_clean(self, lint):
        assert lint(
            """
            from repro.parallel import payload_executor, resolve_payload

            def worker(ref):
                return resolve_payload(ref).sum()

            def run(refs):
                with payload_executor(4) as pool:
                    return list(pool.map(worker, refs))
            """
        ) == []

    def test_worker_writing_into_payload(self, lint):
        found = lint(
            """
            from repro.parallel import resolve_payload

            def worker(index, ref):
                base, problems, priors = resolve_payload(ref)
                priors[index][:] = 0.0
                return priors[index]
            """
        )
        assert codes(found) == ["REPRO301"]
        assert found[0].line == 6

    def test_worker_augmented_assign_on_payload(self, lint):
        found = lint(
            """
            from repro.parallel import resolve_payload

            def worker(ref):
                data = resolve_payload(ref)
                data += 1
                return data
            """
        )
        assert codes(found) == ["REPRO301"]

    def test_worker_mutating_method_on_payload(self, lint):
        found = lint(
            """
            from repro.parallel import resolve_payload

            def worker(ref):
                payload = resolve_payload(ref)
                payload.update(done=True)
                return payload
            """
        )
        assert codes(found) == ["REPRO301"]
        assert ".update()" in found[0].message

    def test_worker_reading_payload_is_clean(self, lint):
        assert lint(
            """
            from repro.parallel import resolve_payload

            def worker(index, ref):
                base, problems = resolve_payload(ref)
                local = problems[index].copy()
                local[:] = 1.0
                return base.estimate(local)
            """
        ) == []

    def test_pragma_suppresses(self, lint):
        assert lint(
            """
            from repro.parallel import resolve_payload

            def worker(ref):
                scratch = resolve_payload(ref)
                scratch += 1  # reprolint: allow[pool-safety]
                return scratch
            """
        ) == []


class TestRegistryContracts:
    ESTIMATOR_PREAMBLE = (
        "from repro.estimation.base import Estimator\n"
        "from repro.estimation.registry import register\n"
    )

    @pytest.fixture
    def lint_estimator(self, lint):
        """Lint a class-definition snippet below the estimator imports."""

        def run(body: str, **kwargs):
            return lint(self.ESTIMATOR_PREAMBLE + textwrap.dedent(body), **kwargs)

        return run

    def test_missing_estimate_flagged(self, lint_estimator):
        found = lint_estimator(
            """
            @register()
            class Broken(Estimator):
                name = "broken"
            """
        )
        assert codes(found) == ["REPRO401"]
        assert "estimate()" in found[0].message

    def test_inherited_estimate_is_accepted(self, lint_estimator):
        assert lint_estimator(
            """
            class BaseImpl(Estimator):
                name = "base-impl"

                def estimate(self, problem):
                    return problem

            @register()
            class Derived(BaseImpl):
                name = "derived"
            """
        ) == []

    def test_incompatible_estimate_signature(self, lint_estimator):
        found = lint_estimator(
            """
            @register()
            class Wrong(Estimator):
                name = "wrong"

                def estimate(self, problem, mode):
                    return problem
            """
        )
        assert codes(found) == ["REPRO401"]
        assert "incompatible signature" in found[0].message

    def test_defaulted_extras_are_compatible(self, lint_estimator):
        assert lint_estimator(
            """
            @register()
            class Flexible(Estimator):
                name = "flexible"

                def estimate(self, problem, tolerance=1e-9, *, verbose=False):
                    return problem
            """
        ) == []

    def test_missing_registry_name(self, lint_estimator):
        found = lint_estimator(
            """
            @register()
            class Nameless(Estimator):
                def estimate(self, problem):
                    return problem
            """
        )
        assert codes(found) == ["REPRO401"]
        assert "registry name" in found[0].message

    def test_explicit_register_name_counts(self, lint_estimator):
        assert lint_estimator(
            """
            @register("explicit")
            class Explicit(Estimator):
                def estimate(self, problem):
                    return problem
            """
        ) == []

    def test_warm_start_contract_enforced(self, lint_estimator):
        found = lint_estimator(
            """
            @register()
            class Tomogravity(Estimator):
                name = "tomogravity"

                def estimate(self, problem):
                    return problem
            """
        )
        assert codes(found) == ["REPRO401"]
        assert "warm-startable" in found[0].message

    def test_warm_start_contract_satisfied(self, lint_estimator):
        assert lint_estimator(
            """
            @register()
            class Tomogravity(Estimator):
                name = "tomogravity"

                def estimate(self, problem):
                    return problem

                def set_warm_start(self, vector):
                    self._start = vector
            """
        ) == []

    def test_unregistered_classes_are_ignored(self, lint):
        assert lint(
            """
            class Helper:
                def estimate(self, problem, extra, flags):
                    return problem
            """
        ) == []


class TestFaultHandling:
    def test_silent_swallow_is_flagged(self, lint):
        found = lint(
            """
            from repro.errors import EstimationError, SolverError

            def solve(estimator, problem, prior):
                try:
                    return estimator.estimate(problem).vector
                except (EstimationError, SolverError):
                    return prior
            """
        )
        assert codes(found) == ["REPRO501"]
        assert found[0].line == 7
        assert "EstimationError" in found[0].message

    def test_reraise_passes(self, lint):
        found = lint(
            """
            from repro.errors import EstimationError

            def solve(estimator, problem):
                try:
                    return estimator.estimate(problem)
                except EstimationError as exc:
                    raise EstimationError(f"wrapped: {exc}") from exc
            """
        )
        assert codes(found) == []

    def test_warning_passes(self, lint):
        found = lint(
            """
            import warnings
            from repro.errors import SolverError

            def solve(solver, problem, prior):
                try:
                    return solver(problem)
                except SolverError as exc:
                    warnings.warn(f"fell back: {exc}", RuntimeWarning)
                    return prior
            """
        )
        assert codes(found) == []

    def test_structured_record_passes(self, lint):
        found = lint(
            """
            from repro.errors import EstimationError
            from repro.resilience.report import FailureReason

            def solve(estimator, problem):
                try:
                    return estimator.estimate(problem).vector, None
                except EstimationError as exc:
                    return None, FailureReason.from_exception(exc, spec="x")
            """
        )
        assert codes(found) == []

    def test_non_repro_exceptions_ignored(self, lint):
        found = lint(
            """
            def probe(mapping, key):
                try:
                    return mapping[key]
                except KeyError:
                    return None
            """
        )
        assert codes(found) == []

    def test_pragma_suppresses(self, lint):
        found = lint(
            """
            from repro.errors import TopologyError

            def is_valid(network):
                try:
                    network.validate()
                except TopologyError:  # reprolint: allow[fault-handling]
                    return False
                return True
            """
        )
        assert codes(found) == []

    def test_allowlist_suppresses(self, lint):
        entry = AllowlistEntry(
            rule="fault-handling",
            path="snippet.py",
            fragment="except EstimationError",
            reason="reviewed",
        )
        found = lint(
            """
            from repro.errors import EstimationError

            def solve(estimator, problem, prior):
                try:
                    return estimator.estimate(problem).vector
                except EstimationError:
                    return prior
            """,
            allowlist=[entry],
        )
        assert codes(found) == []


class TestTelemetry:
    SRC = "src/repro/evaluation/timing.py"

    def test_module_attribute_timer_flagged(self, lint):
        found = lint(
            """
            import time

            def run(fn):
                start = time.perf_counter()
                result = fn()
                return result, time.perf_counter() - start
            """,
            path=self.SRC,
        )
        assert codes(found) == ["REPRO601", "REPRO601"]
        assert [d.line for d in found] == [5, 7]
        assert "perf_counter" in found[0].message

    def test_module_alias_and_bare_import_flagged(self, lint):
        found = lint(
            """
            import time as _t
            from time import monotonic as now

            def stamp():
                return _t.time(), now()
            """,
            path=self.SRC,
        )
        assert codes(found) == ["REPRO601", "REPRO601"]
        assert "time" in found[0].message
        assert "monotonic" in found[1].message

    def test_sleep_and_unrelated_names_pass(self, lint):
        found = lint(
            """
            import time

            def wait(store):
                time.sleep(0.01)
                return store.time()  # a method named time, not the module
            """,
            path=self.SRC,
        )
        assert codes(found) == []

    def test_telemetry_package_itself_exempt(self, lint):
        found = lint(
            """
            import time

            def clock():
                return time.time()
            """,
            path="src/repro/telemetry/spans.py",
        )
        assert codes(found) == []

    def test_outside_src_ignored(self, lint):
        found = lint(
            """
            import time

            def bench(fn):
                start = time.perf_counter()
                fn()
                return time.perf_counter() - start
            """,
            path="benchmarks/bench_thing.py",
        )
        assert codes(found) == []

    def test_pragma_suppresses(self, lint):
        found = lint(
            """
            import time

            def deadline():
                return time.monotonic()  # reprolint: allow[telemetry]
            """,
            path=self.SRC,
        )
        assert codes(found) == []

    def test_allowlist_suppresses(self, lint):
        entry = AllowlistEntry(
            rule="telemetry",
            path="src/repro/evaluation/timing.py",
            fragment="time.monotonic()",
            reason="reviewed",
        )
        found = lint(
            """
            import time

            def deadline():
                return time.monotonic()
            """,
            allowlist=[entry],
            path=self.SRC,
        )
        assert codes(found) == []


class TestEngine:
    def test_parse_pragmas(self):
        pragmas = parse_pragmas(
            [
                "x = 1",
                "y = 2  # reprolint: allow[determinism, pool-safety]",
                "z = 3  # reprolint: allow[*]",
            ]
        )
        assert pragmas == {2: {"determinism", "pool-safety"}, 3: {"*"}}

    def test_syntax_error_reported_not_crashed(self, lint):
        found = lint("def broken(:\n    pass\n")
        assert codes(found) == ["REPRO000"]

    def test_malformed_allowlist_raises(self, tmp_path):
        bad = tmp_path / "allowlist.txt"
        bad.write_text("determinism | only-three | fields\n")
        with pytest.raises(ValueError, match="allowlist"):
            load_allowlist(bad)

    def test_rule_registry_is_complete(self):
        by_name = rules_by_name()
        assert set(by_name) == {
            "sparse-safety",
            "determinism",
            "pool-safety",
            "registry-contracts",
            "fault-handling",
            "telemetry",
        }
        assert len({rule.code for rule in ALL_RULES}) == len(ALL_RULES)
