"""The ``effective_jobs`` policy, shared payloads, and pool guarantees.

BENCH_PR3 recorded ``engine_parallel_seconds > engine_serial_seconds`` at
``cpu_count: 1``: asking for ``n_jobs=2`` on a single-core box spawned a
process pool that paid interpreter start-up and pickling for zero
concurrency.  The fix clamps the resolved job count to the CPU count, and
every engine skips pool creation entirely when the resolved count is 1 —
which these tests assert directly by making pool construction an error.

The shared-payload helpers (``share_payload`` / ``resolve_payload`` /
``payload_executor``) are how the sweep and shard engines stop pickling
the routing matrix into every worker task: the payload registers once in
the parent, workers inherit it by fork (or receive it once per worker
under spawn) and tasks carry only a tiny :class:`PayloadRef` token.
"""

from __future__ import annotations

import concurrent.futures
import os

import pytest

from repro.datasets import small_scenario
from repro.errors import EstimationError
from repro.parallel import (
    PayloadRef,
    effective_jobs,
    payload_executor,
    release_payload,
    resolve_payload,
    share_payload,
)


@pytest.fixture(scope="module")
def scenario():
    return small_scenario(seed=21, num_nodes=5, busy_length=12, num_samples=40)


class _ForbiddenPool:
    """Stands in for ProcessPoolExecutor; instantiating it fails the test."""

    def __init__(self, *args, **kwargs):
        raise AssertionError("a process pool was created for a serial-resolved run")


@pytest.fixture
def forbid_pools(monkeypatch):
    monkeypatch.setattr(concurrent.futures, "ProcessPoolExecutor", _ForbiddenPool)


@pytest.fixture
def single_cpu(monkeypatch):
    monkeypatch.setattr(os, "cpu_count", lambda: 1)


class TestEffectiveJobs:
    def test_single_task_is_always_serial(self):
        assert effective_jobs(8, 1) == 1
        assert effective_jobs(None, 0) == 1

    def test_clamped_to_task_count(self, monkeypatch):
        monkeypatch.setattr(os, "cpu_count", lambda: 16)
        assert effective_jobs(8, 3) == 3

    def test_clamped_to_cpu_count(self, single_cpu):
        # The BENCH_PR3 regression: n_jobs=2 on one core must resolve to 1.
        assert effective_jobs(2, 6) == 1

    def test_none_means_all_cores_up_to_tasks(self, monkeypatch):
        monkeypatch.setattr(os, "cpu_count", lambda: 4)
        assert effective_jobs(None, 10) == 4
        assert effective_jobs(None, 2) == 2

    def test_invalid_n_jobs_raises_callers_error(self):
        with pytest.raises(EstimationError):
            effective_jobs(0, 5, error=EstimationError)

    def test_cpu_count_none_treated_as_one(self, monkeypatch):
        monkeypatch.setattr(os, "cpu_count", lambda: None)
        assert effective_jobs(4, 8) == 1


def _payload_first_element(ref):
    """Module-level worker: resolve the shared payload in a pool process."""
    return resolve_payload(ref)[0]


class TestSharedPayloads:
    def test_round_trip_and_release(self):
        ref = share_payload({"alpha": 1})
        assert isinstance(ref, PayloadRef)
        assert resolve_payload(ref) == {"alpha": 1}
        release_payload(ref)
        release_payload(ref)  # idempotent
        with pytest.raises(RuntimeError, match="payload"):
            resolve_payload(ref)

    def test_non_refs_pass_through_unchanged(self):
        payload = ("anything", 42)
        assert resolve_payload(payload) is payload

    def test_refs_pickle_small(self):
        import pickle

        ref = share_payload(list(range(10_000)))
        try:
            assert len(pickle.dumps(ref)) < 200
        finally:
            release_payload(ref)

    def test_payload_executor_resolves_in_workers(self):
        ref = share_payload(("shared-value", [1, 2, 3]))
        try:
            with payload_executor(max_workers=2) as pool:
                results = list(pool.map(_payload_first_element, [ref] * 4))
        finally:
            release_payload(ref)
        assert results == ["shared-value"] * 4


class TestNoPoolSpawn:
    """Engines must not create a process pool when one worker is resolved."""

    def test_run_method_specs_single_core(self, scenario, single_cpu, forbid_pools):
        from repro.evaluation.experiments import default_method_specs, run_method_specs

        specs = default_method_specs()[:3]
        records = run_method_specs(scenario, specs, n_jobs=4)
        assert len(records) == len(specs)

    def test_robustness_sweep_single_core(self, scenario, single_cpu, forbid_pools):
        from repro.evaluation.experiments import robustness_sweep

        records = robustness_sweep(
            scenario,
            jitter_values=(0.0,),
            loss_values=(0.0, 0.01),
            methods=("gravity",),
            seed=3,
            n_jobs=2,
        )
        assert len(records) == 2

    def test_failure_sweep_single_core(self, scenario, single_cpu, forbid_pools):
        from repro.evaluation.experiments import MethodSpec
        from repro.planning.sweep import failure_sweep

        records = failure_sweep(
            scenario, specs=[MethodSpec(label="gravity", estimator="gravity")], n_jobs=8
        )
        assert records

    def test_bounds_batch_tiny_batch(self, forbid_pools):
        # A single-variable batch resolves to one worker regardless of
        # n_jobs or core count: no pool may be spawned for it.
        import numpy as np

        from repro.optimize.linear_program import bound_variables_batch

        matrix = np.array([[1.0, 1.0]])
        rhs = np.array([2.0])
        result = bound_variables_batch([0], matrix, rhs, n_jobs=4)
        assert result.lower[0] == pytest.approx(0.0, abs=1e-8)
        assert result.upper[0] == pytest.approx(2.0, abs=1e-8)


def _mutating_worker(ref):
    """Module-level worker that tries to write into a shared payload."""
    payload = resolve_payload(ref)
    try:
        payload["vector"][0] = 99.0
    except ValueError:
        return "refused"
    return "mutated"


class TestReadOnlyPayloads:
    """``resolve_payload`` hands out read-only views of shared arrays.

    A worker that writes into a resolved payload would corrupt
    copy-on-write pages under fork (or diverge per-worker state under
    spawn), silently breaking the serial==parallel record invariant.  The
    views make that mistake raise ``ValueError`` at the write site; the
    reprolint ``pool-safety`` rule catches the same mistake statically.
    """

    def test_resolved_arrays_are_read_only(self):
        import numpy as np

        original = np.arange(4.0)
        ref = share_payload(original)
        try:
            view = resolve_payload(ref)
            assert not view.flags.writeable
            assert np.shares_memory(view, original)  # a view, not a copy
            with pytest.raises(ValueError):
                view[0] = -1.0
        finally:
            release_payload(ref)

    def test_containers_are_recursed(self):
        import numpy as np

        payload = {"vector": np.ones(3), "nested": [np.zeros(2), "label"], "pair": (np.ones(1),)}
        ref = share_payload(payload)
        try:
            resolved = resolve_payload(ref)
            assert not resolved["vector"].flags.writeable
            assert not resolved["nested"][0].flags.writeable
            assert not resolved["pair"][0].flags.writeable
            assert resolved["nested"][1] == "label"
        finally:
            release_payload(ref)

    def test_parent_arrays_stay_writable(self):
        import numpy as np

        original = np.zeros(3)
        ref = share_payload(original)
        try:
            resolve_payload(ref)
            original[0] = 7.0  # the parent's own array is untouched
            assert original[0] == 7.0
        finally:
            release_payload(ref)

    def test_passthrough_values_are_not_wrapped(self):
        import numpy as np

        array = np.zeros(2)
        assert resolve_payload(array) is array
        assert array.flags.writeable

    def test_mutating_worker_fails_loudly(self):
        import numpy as np

        ref = share_payload({"vector": np.zeros(3)})
        try:
            with payload_executor(max_workers=2) as pool:
                results = list(pool.map(_mutating_worker, [ref] * 4))
        finally:
            release_payload(ref)
        assert results == ["refused"] * 4
