"""Tests for the exception hierarchy and package metadata."""

from __future__ import annotations

import pytest

import repro
from repro.errors import (
    EstimationError,
    MeasurementError,
    ReproError,
    RoutingError,
    SolverError,
    TopologyError,
    TrafficError,
)


class TestHierarchy:
    @pytest.mark.parametrize(
        "error_class",
        [TopologyError, RoutingError, TrafficError, MeasurementError, EstimationError, SolverError],
    )
    def test_all_errors_derive_from_repro_error(self, error_class):
        assert issubclass(error_class, ReproError)
        with pytest.raises(ReproError):
            raise error_class("boom")

    def test_subsystem_errors_are_distinct(self):
        assert not issubclass(TopologyError, RoutingError)
        assert not issubclass(SolverError, EstimationError)

    def test_catching_base_class_catches_library_failures(self):
        from repro.topology import Node

        with pytest.raises(ReproError):
            Node(name="")


class TestPackageMetadata:
    def test_version_exposed(self):
        assert isinstance(repro.__version__, str)
        assert repro.__version__.count(".") == 2

    def test_error_classes_exported_at_top_level(self):
        for name in (
            "ReproError",
            "TopologyError",
            "RoutingError",
            "TrafficError",
            "MeasurementError",
            "EstimationError",
            "SolverError",
        ):
            assert name in repro.__all__
            assert hasattr(repro, name)
