"""Tests for the NetFlow-style aggregation pipeline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import MeasurementError
from repro.measurement import (
    FlowRecord,
    NetFlowAggregator,
    flows_from_series,
    netflow_smoothed_series,
)
from repro.topology import NodePair
from repro.traffic import TrafficMatrix, TrafficMatrixSeries


PAIRS = (NodePair("A", "B"), NodePair("B", "A"))


def bursty_series(num=48, seed=0) -> TrafficMatrixSeries:
    """A series with strong five-minute variability around a stable mean."""
    rng = np.random.default_rng(seed)
    snapshots = []
    for _ in range(num):
        a_to_b = max(0.0, rng.normal(100.0, 40.0))
        b_to_a = max(0.0, rng.normal(20.0, 10.0))
        snapshots.append(TrafficMatrix(PAIRS, [a_to_b, b_to_a]))
    return TrafficMatrixSeries(snapshots)


class TestFlowRecord:
    def test_rate_and_window_attribution(self):
        flow = FlowRecord(pair=PAIRS[0], start_time=0.0, end_time=600.0, total_bytes=600e6)
        assert flow.duration == 600.0
        assert flow.average_rate_mbps == pytest.approx(8.0)
        assert flow.bytes_in_window(0.0, 300.0) == pytest.approx(300e6)
        assert flow.bytes_in_window(600.0, 900.0) == 0.0

    def test_invalid_records_rejected(self):
        with pytest.raises(MeasurementError):
            FlowRecord(pair=PAIRS[0], start_time=10.0, end_time=10.0, total_bytes=1.0)
        with pytest.raises(MeasurementError):
            FlowRecord(pair=PAIRS[0], start_time=0.0, end_time=10.0, total_bytes=-1.0)


class TestFlowDecomposition:
    def test_flows_conserve_total_volume(self):
        series = bursty_series()
        flows = flows_from_series(series, mean_flow_duration_seconds=1200.0, seed=1)
        total_flow_bytes = sum(f.total_bytes for f in flows)
        total_true_bytes = series.as_array().sum() * series.interval_seconds * 1e6 / 8.0
        assert total_flow_bytes == pytest.approx(total_true_bytes, rel=1e-6)

    def test_invalid_duration_rejected(self):
        with pytest.raises(MeasurementError):
            flows_from_series(bursty_series(), mean_flow_duration_seconds=0.0)


class TestAggregator:
    def test_reaggregation_preserves_means(self):
        series = bursty_series()
        smoothed = netflow_smoothed_series(series, mean_flow_duration_seconds=1800.0, seed=2)
        assert len(smoothed) == len(series)
        true_means = series.demand_means()
        smoothed_means = smoothed.demand_means()
        assert np.allclose(smoothed_means, true_means, rtol=0.05)

    def test_reaggregation_reduces_variance(self):
        """The paper's core argument: NetFlow averaging destroys within-flow variability."""
        series = bursty_series()
        smoothed = netflow_smoothed_series(series, mean_flow_duration_seconds=3600.0, seed=3)
        true_var = series.demand_variances()
        smoothed_var = smoothed.demand_variances()
        assert np.all(smoothed_var < true_var)
        assert smoothed_var.sum() < 0.7 * true_var.sum()

    def test_unknown_pair_rejected(self):
        aggregator = NetFlowAggregator(PAIRS[:1])
        flow = FlowRecord(pair=PAIRS[1], start_time=0.0, end_time=100.0, total_bytes=1.0)
        with pytest.raises(MeasurementError):
            aggregator.aggregate([flow], 0.0, 1)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(MeasurementError):
            NetFlowAggregator(PAIRS, interval_seconds=0.0)
        with pytest.raises(MeasurementError):
            NetFlowAggregator(PAIRS).aggregate([], 0.0, 0)
