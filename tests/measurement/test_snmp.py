"""Tests for the SNMP counter/poller simulation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import MeasurementError
from repro.measurement import (
    CounterState,
    PollMatrix,
    PollResult,
    SNMPPoller,
    rates_from_poll_matrix,
    rates_from_polls,
)


class TestCounterState:
    def test_advance_accumulates_bytes(self):
        counter = CounterState("link")
        counter.advance(rate_mbps=8.0, duration_seconds=1.0)  # 1 MB
        assert counter.value_bytes == 1_000_000
        counter.advance(rate_mbps=8.0, duration_seconds=1.0)
        assert counter.value_bytes == 2_000_000

    def test_negative_rate_rejected(self):
        with pytest.raises(MeasurementError):
            CounterState("link").advance(-1.0, 1.0)

    def test_counter_wraps_at_64_bits(self):
        counter = CounterState("link", value_bytes=2**64 - 10)
        counter.advance(rate_mbps=8.0, duration_seconds=1.0)
        assert 0 <= counter.value_bytes < 2**64


class TestPoller:
    def test_validation(self):
        with pytest.raises(MeasurementError):
            SNMPPoller([])
        with pytest.raises(MeasurementError):
            SNMPPoller(["a", "a"])
        with pytest.raises(MeasurementError):
            SNMPPoller(["a"], interval_seconds=0)
        with pytest.raises(MeasurementError):
            SNMPPoller(["a"], loss_probability=1.0)
        with pytest.raises(MeasurementError):
            SNMPPoller(["a"], jitter_std_seconds=-1.0)

    def test_poll_returns_one_result_per_object(self):
        poller = SNMPPoller(["a", "b"], seed=1)
        results = poller.poll(0.0)
        assert {r.object_name for r in results} == {"a", "b"}
        assert all(not r.lost for r in results)

    def test_unknown_counter_rejected(self):
        poller = SNMPPoller(["a"], seed=1)
        with pytest.raises(MeasurementError):
            poller.counter("z")

    def test_loss_probability_produces_lost_polls(self):
        poller = SNMPPoller([f"o{i}" for i in range(200)], loss_probability=0.3, seed=2)
        results = poller.poll(0.0)
        lost = sum(r.lost for r in results)
        assert 20 < lost < 120

    def test_run_schedule_produces_rounds(self):
        poller = SNMPPoller(["a"], interval_seconds=300.0, jitter_std_seconds=0.0, seed=3)
        rounds = poller.run_schedule([{"a": 100.0}, {"a": 200.0}], start_time=0.0)
        assert len(rounds) == 3


class TestRatesFromPolls:
    def run_pipeline(self, rates, loss=0.0, jitter=0.0, seed=0):
        poller = SNMPPoller(
            ["x"], interval_seconds=300.0, jitter_std_seconds=jitter, loss_probability=loss, seed=seed
        )
        rounds = poller.run_schedule([{"x": r} for r in rates], start_time=0.0)
        return rates_from_polls(rounds, ["x"])

    def test_exact_recovery_without_jitter(self):
        recovered = self.run_pipeline([100.0, 250.0, 50.0])
        assert recovered.shape == (3, 1)
        assert np.allclose(recovered[:, 0], [100.0, 250.0, 50.0], rtol=1e-6)

    def test_jitter_adjustment_keeps_rates_close(self):
        recovered = self.run_pipeline([100.0] * 10, jitter=3.0, seed=5)
        assert np.allclose(recovered[:, 0], 100.0, rtol=0.05)

    def test_lost_polls_are_interpolated(self):
        recovered = self.run_pipeline([100.0] * 20, loss=0.3, seed=7)
        assert recovered.shape == (20, 1)
        assert np.all(np.isfinite(recovered))
        assert np.allclose(recovered[:, 0], 100.0, rtol=0.2)

    def test_requires_two_rounds(self):
        poller = SNMPPoller(["x"], seed=1)
        with pytest.raises(MeasurementError):
            rates_from_polls([poller.poll(0.0)], ["x"])

    def test_missing_object_in_round_rejected(self):
        round_a = [PollResult("x", 0.0, 0.0, 0)]
        round_b = [PollResult("y", 300.0, 300.0, 0)]
        with pytest.raises(MeasurementError):
            rates_from_polls([round_a, round_b], ["x"])

    def test_all_lost_rejected(self):
        rounds = [
            [PollResult("x", 0.0, 0.0, None)],
            [PollResult("x", 300.0, 300.0, None)],
        ]
        with pytest.raises(MeasurementError):
            rates_from_polls(rounds, ["x"])


def _reference_rates(poll_rounds, object_names):
    """The pre-vectorization per-sample loop, kept as the agreement oracle."""
    name_index = {name: idx for idx, name in enumerate(object_names)}
    num_intervals = len(poll_rounds) - 1
    rates = np.full((num_intervals, len(object_names)), np.nan)
    by_round = [{r.object_name: r for r in round_results} for round_results in poll_rounds]
    for name, col in name_index.items():
        for k in range(num_intervals):
            first, second = by_round[k][name], by_round[k + 1][name]
            if first.lost or second.lost:
                continue
            elapsed = second.response_time - first.response_time
            if elapsed <= 0:
                continue
            delta = (second.counter_bytes - first.counter_bytes) % 2**64
            rates[k, col] = delta * 8.0 / 1e6 / elapsed
        column = rates[:, col]
        valid = ~np.isnan(column)
        if not valid.all():
            indices = np.arange(num_intervals)
            column[~valid] = np.interp(indices[~valid], indices[valid], column[valid])
    return rates


class TestVectorizedPoller:
    def test_matrix_and_mapping_schedules_share_the_random_stream(self):
        names = ["a", "b", "c"]
        rate_rows = [{"a": 100.0, "b": 50.0}, {"a": 75.0, "c": 25.0}]
        rate_matrix = np.array([[100.0, 50.0, 0.0], [75.0, 0.0, 25.0]])

        by_rounds = SNMPPoller(names, jitter_std_seconds=2.0, loss_probability=0.2, seed=9)
        by_matrix = SNMPPoller(names, jitter_std_seconds=2.0, loss_probability=0.2, seed=9)
        rounds = by_rounds.run_schedule(rate_rows, start_time=600.0)
        matrix = by_matrix.run_schedule_matrix(rate_matrix, start_time=600.0)

        assert matrix.num_rounds == len(rounds) == 3
        for k, round_results in enumerate(rounds):
            for col, result in enumerate(round_results):
                assert result.response_time == pytest.approx(
                    float(matrix.response_times[k, col])
                )
                assert result.lost == bool(matrix.lost[k, col])
                if not result.lost:
                    assert result.counter_bytes == int(matrix.counters[k, col])

    def test_counter_view_reads_and_advances_the_array(self):
        poller = SNMPPoller(["a", "b"], jitter_std_seconds=0.0, seed=1)
        poller.counter("a").advance(rate_mbps=8.0, duration_seconds=1.0)
        assert poller.counter("a").value_bytes == 1_000_000
        assert poller.counter("b").value_bytes == 0
        assert poller.counter_values().tolist() == [1_000_000, 0]

    def test_counters_wrap_like_counter64(self):
        poller = SNMPPoller(["a"], jitter_std_seconds=0.0, seed=1)
        poller.counter("a").value_bytes = 2**64 - 10
        poller.advance_counters({"a": 8.0}, duration_seconds=1.0)
        assert 0 <= poller.counter("a").value_bytes < 2**64
        rates = rates_from_polls(
            poller.run_schedule([{"a": 100.0}], start_time=0.0), ["a"]
        )
        assert rates[0, 0] == pytest.approx(100.0, rel=1e-6)

    def test_negative_rates_rejected(self):
        poller = SNMPPoller(["a"], seed=1)
        with pytest.raises(MeasurementError):
            poller.advance_counters({"a": -1.0}, 1.0)
        with pytest.raises(MeasurementError):
            poller.run_schedule_matrix(np.array([[-1.0]]))

    def test_vectorized_rates_agree_with_reference_loop(self):
        names = [f"o{i}" for i in range(7)]
        poller = SNMPPoller(
            names, jitter_std_seconds=3.0, loss_probability=0.2, seed=42
        )
        rng = np.random.default_rng(0)
        rate_matrix = rng.uniform(10.0, 500.0, size=(30, len(names)))
        polls = poller.run_schedule_matrix(rate_matrix, start_time=0.0)

        vectorized, _ = rates_from_poll_matrix(polls)
        reference = _reference_rates(polls.to_rounds(), names)
        assert np.allclose(vectorized, reference, rtol=0, atol=1e-12)


class TestRateDiagnostics:
    def test_clean_run_has_no_interpolation(self):
        poller = SNMPPoller(["a", "b"], jitter_std_seconds=0.0, seed=1)
        rounds = poller.run_schedule([{"a": 10.0}] * 5)
        _, diagnostics = rates_from_polls(rounds, ["a", "b"], return_diagnostics=True)
        assert diagnostics.num_intervals == 5
        assert diagnostics.num_objects == 2
        assert diagnostics.total_samples == 10
        assert diagnostics.lost_samples == 0
        assert diagnostics.degenerate_samples == 0
        assert diagnostics.interpolated_samples == 0
        assert diagnostics.interpolated_fraction == 0.0

    def test_lost_polls_are_counted(self):
        rounds = [
            [PollResult("x", 0.0, 0.0, 0)],
            [PollResult("x", 300.0, 300.0, None)],
            [PollResult("x", 600.0, 600.0, 2 * 300 * 125_000)],
            [PollResult("x", 900.0, 900.0, 3 * 300 * 125_000)],
        ]
        rates, diagnostics = rates_from_polls(rounds, ["x"], return_diagnostics=True)
        # The lost middle poll invalidates the two adjacent intervals.
        assert diagnostics.lost_samples == 2
        assert diagnostics.degenerate_samples == 0
        assert diagnostics.interpolated_samples == 2
        # The only valid interval carries 125 kB/s = 1 Mbit/s; the two
        # invalidated intervals are filled by constant extrapolation.
        assert np.allclose(rates[:, 0], 1.0)

    def test_degenerate_intervals_counted_separately_from_loss(self):
        # Second response arrives *before* the first (elapsed <= 0): both
        # polls answered, so this is degenerate, not UDP loss.
        rounds = [
            [PollResult("x", 0.0, 10.0, 0)],
            [PollResult("x", 300.0, 5.0, 1000)],
            [PollResult("x", 600.0, 605.0, 2000)],
        ]
        rates, diagnostics = rates_from_polls(rounds, ["x"], return_diagnostics=True)
        assert diagnostics.degenerate_samples == 1
        assert diagnostics.lost_samples == 0
        assert diagnostics.interpolated_samples == 1
        assert np.all(np.isfinite(rates))

    def test_excessive_interpolation_raises(self):
        rounds = [
            [PollResult("x", 0.0, 0.0, 0)],
            [PollResult("x", 300.0, 300.0, None)],
            [PollResult("x", 600.0, 600.0, 2000)],
            [PollResult("x", 900.0, 900.0, 3000)],
        ]
        with pytest.raises(MeasurementError, match="interpolated"):
            rates_from_polls(rounds, ["x"], max_interpolated_fraction=0.5)
        # The same data passes with a permissive threshold.
        rates_from_polls(rounds, ["x"], max_interpolated_fraction=0.7)

    def test_merged_accumulates_counts(self):
        poller = SNMPPoller(["a"], jitter_std_seconds=0.0, seed=1)
        _, first = rates_from_polls(
            poller.run_schedule([{"a": 10.0}] * 4), ["a"], return_diagnostics=True
        )
        merged = first.merged(first)
        assert merged.num_objects == 2
        assert merged.total_samples == 8


class TestPollMatrix:
    def test_shape_validation(self):
        with pytest.raises(MeasurementError):
            PollMatrix(
                object_names=("a",),
                scheduled_times=np.zeros(2),
                response_times=np.zeros((3, 1)),
                counters=np.zeros((2, 1), dtype=np.uint64),
                lost=np.zeros((2, 1), dtype=bool),
            )

    def test_roundtrip_through_rounds(self):
        poller = SNMPPoller(["a", "b"], jitter_std_seconds=1.0, loss_probability=0.3, seed=3)
        matrix = poller.run_schedule_matrix(np.full((4, 2), 50.0), start_time=100.0)
        rebuilt = PollMatrix.from_rounds(matrix.to_rounds(), matrix.object_names)
        assert np.allclose(rebuilt.response_times, matrix.response_times)
        assert np.array_equal(rebuilt.lost, matrix.lost)
        assert np.array_equal(
            rebuilt.counters[~rebuilt.lost], matrix.counters[~matrix.lost]
        )
