"""Tests for the SNMP counter/poller simulation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import MeasurementError
from repro.measurement import CounterState, PollResult, SNMPPoller, rates_from_polls


class TestCounterState:
    def test_advance_accumulates_bytes(self):
        counter = CounterState("link")
        counter.advance(rate_mbps=8.0, duration_seconds=1.0)  # 1 MB
        assert counter.value_bytes == 1_000_000
        counter.advance(rate_mbps=8.0, duration_seconds=1.0)
        assert counter.value_bytes == 2_000_000

    def test_negative_rate_rejected(self):
        with pytest.raises(MeasurementError):
            CounterState("link").advance(-1.0, 1.0)

    def test_counter_wraps_at_64_bits(self):
        counter = CounterState("link", value_bytes=2**64 - 10)
        counter.advance(rate_mbps=8.0, duration_seconds=1.0)
        assert 0 <= counter.value_bytes < 2**64


class TestPoller:
    def test_validation(self):
        with pytest.raises(MeasurementError):
            SNMPPoller([])
        with pytest.raises(MeasurementError):
            SNMPPoller(["a", "a"])
        with pytest.raises(MeasurementError):
            SNMPPoller(["a"], interval_seconds=0)
        with pytest.raises(MeasurementError):
            SNMPPoller(["a"], loss_probability=1.0)
        with pytest.raises(MeasurementError):
            SNMPPoller(["a"], jitter_std_seconds=-1.0)

    def test_poll_returns_one_result_per_object(self):
        poller = SNMPPoller(["a", "b"], seed=1)
        results = poller.poll(0.0)
        assert {r.object_name for r in results} == {"a", "b"}
        assert all(not r.lost for r in results)

    def test_unknown_counter_rejected(self):
        poller = SNMPPoller(["a"], seed=1)
        with pytest.raises(MeasurementError):
            poller.counter("z")

    def test_loss_probability_produces_lost_polls(self):
        poller = SNMPPoller([f"o{i}" for i in range(200)], loss_probability=0.3, seed=2)
        results = poller.poll(0.0)
        lost = sum(r.lost for r in results)
        assert 20 < lost < 120

    def test_run_schedule_produces_rounds(self):
        poller = SNMPPoller(["a"], interval_seconds=300.0, jitter_std_seconds=0.0, seed=3)
        rounds = poller.run_schedule([{"a": 100.0}, {"a": 200.0}], start_time=0.0)
        assert len(rounds) == 3


class TestRatesFromPolls:
    def run_pipeline(self, rates, loss=0.0, jitter=0.0, seed=0):
        poller = SNMPPoller(
            ["x"], interval_seconds=300.0, jitter_std_seconds=jitter, loss_probability=loss, seed=seed
        )
        rounds = poller.run_schedule([{"x": r} for r in rates], start_time=0.0)
        return rates_from_polls(rounds, ["x"])

    def test_exact_recovery_without_jitter(self):
        recovered = self.run_pipeline([100.0, 250.0, 50.0])
        assert recovered.shape == (3, 1)
        assert np.allclose(recovered[:, 0], [100.0, 250.0, 50.0], rtol=1e-6)

    def test_jitter_adjustment_keeps_rates_close(self):
        recovered = self.run_pipeline([100.0] * 10, jitter=3.0, seed=5)
        assert np.allclose(recovered[:, 0], 100.0, rtol=0.05)

    def test_lost_polls_are_interpolated(self):
        recovered = self.run_pipeline([100.0] * 20, loss=0.3, seed=7)
        assert recovered.shape == (20, 1)
        assert np.all(np.isfinite(recovered))
        assert np.allclose(recovered[:, 0], 100.0, rtol=0.2)

    def test_requires_two_rounds(self):
        poller = SNMPPoller(["x"], seed=1)
        with pytest.raises(MeasurementError):
            rates_from_polls([poller.poll(0.0)], ["x"])

    def test_missing_object_in_round_rejected(self):
        round_a = [PollResult("x", 0.0, 0.0, 0)]
        round_b = [PollResult("y", 300.0, 300.0, 0)]
        with pytest.raises(MeasurementError):
            rates_from_polls([round_a, round_b], ["x"])

    def test_all_lost_rejected(self):
        rounds = [
            [PollResult("x", 0.0, 0.0, None)],
            [PollResult("x", 300.0, 300.0, None)],
        ]
        with pytest.raises(MeasurementError):
            rates_from_polls(rounds, ["x"])
