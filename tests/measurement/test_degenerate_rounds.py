"""Degenerate collection rounds: minimal data, total blackouts, wraps.

The contract under test: :func:`~repro.measurement.snmp.rates_from_poll_matrix`
survives a fully lost round by interpolation, refuses an object with zero
valid samples with a diagnosable :class:`~repro.errors.MeasurementError`,
works from the minimum two rounds, enforces ``max_interpolated_fraction``
under burst loss, and recovers exact rates across a mid-schedule Counter32
wrap as long as per-interval deltas stay below half the counter space.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import MeasurementError
from repro.measurement.snmp import PollMatrix, SNMPPoller, rates_from_poll_matrix
from repro.resilience import PollLossBurst, fault_plan

OBJECTS = ("a", "b", "c")
RATES = np.full((8, len(OBJECTS)), 10.0)  # 10 Mbit/s sustained


def clean_polls(counter_bits: int = 64, rates: np.ndarray = RATES):
    poller = SNMPPoller(
        OBJECTS,
        interval_seconds=300.0,
        jitter_std_seconds=0.0,
        seed=0,
        counter_bits=counter_bits,
    )
    return poller.run_schedule_matrix(rates)


def test_fully_lost_round_is_interpolated_not_fatal():
    polls = clean_polls()
    polls.lost[4, :] = True
    rates, diagnostics = rates_from_poll_matrix(polls)
    # Losing round 4 invalidates intervals 3 and 4 for every object.
    assert diagnostics.interpolated_samples == 2 * len(OBJECTS)
    np.testing.assert_allclose(rates, 10.0, rtol=1e-6)


def test_object_with_no_valid_sample_raises_with_its_name():
    polls = clean_polls()
    polls.lost[:, 1] = True  # "b" never answers
    with pytest.raises(MeasurementError, match="all polls lost for object 'b'"):
        rates_from_poll_matrix(polls)


def test_two_rounds_is_the_minimum_viable_archive():
    polls = PollMatrix(
        object_names=("x",),
        scheduled_times=np.array([0.0, 300.0]),
        response_times=np.array([[0.0], [300.0]]),
        counters=np.array([[0], [375_000_000]], dtype=np.uint64),
        lost=np.zeros((2, 1), dtype=bool),
    )
    rates, diagnostics = rates_from_poll_matrix(polls)
    np.testing.assert_allclose(rates, [[10.0]])
    assert diagnostics.num_intervals == 1


def test_single_round_raises():
    polls = PollMatrix(
        object_names=("x",),
        scheduled_times=np.array([0.0]),
        response_times=np.array([[0.0]]),
        counters=np.zeros((1, 1), dtype=np.uint64),
        lost=np.zeros((1, 1), dtype=bool),
    )
    with pytest.raises(MeasurementError, match="at least two poll rounds"):
        rates_from_poll_matrix(polls)


def test_interpolated_fraction_guard_fires_under_burst_loss():
    plan = fault_plan(PollLossBurst(start_round=2, num_rounds=4))
    polls = plan.apply_to_polls(clean_polls())
    # 4 blacked-out rounds poison 5 of 8 intervals per object.
    with pytest.raises(MeasurementError, match="exceeding the allowed fraction"):
        rates_from_poll_matrix(polls, max_interpolated_fraction=0.25)
    # The same archive passes once the operator accepts the degradation.
    rates, diagnostics = rates_from_poll_matrix(polls, max_interpolated_fraction=0.7)
    assert diagnostics.interpolated_samples == 5 * len(OBJECTS)
    np.testing.assert_allclose(rates, 10.0, rtol=1e-6)


def test_mid_schedule_counter32_wrap_matches_counter64():
    # 14 intervals x 3.75e8 bytes overruns 2**32 part-way through the
    # schedule; each per-interval delta stays below 2**31, so every wrap
    # is unambiguous and the narrow counter loses nothing.
    long_rates = np.full((14, len(OBJECTS)), 10.0)
    wide, _ = rates_from_poll_matrix(clean_polls(64, long_rates))
    narrow, diagnostics = rates_from_poll_matrix(clean_polls(32, long_rates))
    assert diagnostics.wrap_samples >= len(OBJECTS)
    assert diagnostics.reset_samples == 0
    np.testing.assert_allclose(narrow, wide)
