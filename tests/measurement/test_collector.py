"""Tests for the distributed collector and measurement archive."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import MeasurementError
from repro.measurement import DistributedCollector, MeasurementArchive
from repro.routing import build_routing_matrix
from repro.topology import NodePair
from repro.traffic import TrafficMatrix, TrafficMatrixSeries


class TestArchive:
    def test_record_and_query(self):
        archive = MeasurementArchive()
        archive.record("link", 0.0, 10.0)
        archive.record("link", 300.0, 20.0)
        assert archive.objects() == ("link",)
        assert archive.num_samples("link") == 2
        assert archive.samples("link")[1] == (300.0, 20.0)

    def test_negative_rate_rejected(self):
        with pytest.raises(MeasurementError):
            MeasurementArchive().record("link", 0.0, -5.0)

    def test_unknown_object_rejected(self):
        with pytest.raises(MeasurementError):
            MeasurementArchive().samples("nope")

    def test_rates_matrix_requires_equal_lengths(self):
        archive = MeasurementArchive()
        archive.record("a", 0.0, 1.0)
        archive.record("a", 300.0, 2.0)
        archive.record("b", 0.0, 3.0)
        with pytest.raises(MeasurementError):
            archive.rates_matrix(["a", "b"])
        matrix = archive.rates_matrix(["a"])
        assert matrix.shape == (2, 1)

    def test_samples_and_rates_matrix_sort_by_timestamp(self):
        # A backup poller may ship its results first; the assembled series
        # must still be in time order, not insertion order.
        archive = MeasurementArchive()
        archive.record("a", 600.0, 3.0)
        archive.record("a", 0.0, 1.0)
        archive.record("a", 300.0, 2.0)
        archive.record("b", 0.0, 10.0)
        archive.record("b", 600.0, 30.0)
        archive.record("b", 300.0, 20.0)
        assert archive.samples("a") == ((0.0, 1.0), (300.0, 2.0), (600.0, 3.0))
        assert np.allclose(archive.schedule("a"), [0.0, 300.0, 600.0])
        matrix = archive.rates_matrix(["a", "b"])
        assert np.allclose(matrix, [[1.0, 10.0], [2.0, 20.0], [3.0, 30.0]])

    def test_rates_matrix_rejects_mismatched_schedules(self):
        archive = MeasurementArchive()
        archive.record("a", 0.0, 1.0)
        archive.record("a", 300.0, 2.0)
        archive.record("b", 0.0, 3.0)
        archive.record("b", 600.0, 4.0)  # same count, different timestamps
        with pytest.raises(MeasurementError, match="different schedule"):
            archive.rates_matrix(["a", "b"])

    def test_rates_matrix_rejects_duplicate_timestamps(self):
        archive = MeasurementArchive()
        archive.record("a", 0.0, 1.0)
        archive.record("a", 0.0, 2.0)
        with pytest.raises(MeasurementError, match="duplicate"):
            archive.rates_matrix(["a"])

    def test_record_block_bulk_matches_per_sample_records(self):
        timestamps = np.array([300.0, 600.0, 900.0])
        rates = np.array([[1.0, 10.0], [2.0, 20.0], [3.0, 30.0]])
        bulk = MeasurementArchive()
        bulk.record_block(["a", "b"], timestamps, rates)
        single = MeasurementArchive()
        for k, timestamp in enumerate(timestamps):
            single.record("a", timestamp, rates[k, 0])
            single.record("b", timestamp, rates[k, 1])
        assert bulk.samples("a") == single.samples("a")
        assert bulk.num_samples("b") == 3
        assert np.allclose(
            bulk.rates_matrix(["a", "b"]), single.rates_matrix(["a", "b"])
        )

    def test_record_block_validation(self):
        archive = MeasurementArchive()
        with pytest.raises(MeasurementError):
            archive.record_block(["a"], np.array([0.0]), np.array([[-1.0]]))
        with pytest.raises(MeasurementError):
            archive.record_block(["a", "b"], np.array([0.0]), np.array([[1.0]]))
        with pytest.raises(MeasurementError):
            archive.record_block(["a", "a"], np.array([0.0]), np.array([[1.0, 2.0]]))


@pytest.fixture
def line_series(line_network):
    snapshots = [
        TrafficMatrix.from_network(
            line_network, {NodePair("A", "D"): 100.0 + 10.0 * k, NodePair("D", "A"): 50.0}
        )
        for k in range(4)
    ]
    return TrafficMatrixSeries(snapshots)


class TestDistributedCollector:
    def test_end_to_end_reconstruction(self, line_network, line_series):
        routing = build_routing_matrix(line_network)
        collector = DistributedCollector(
            routing, num_pollers=2, jitter_std_seconds=0.0, loss_probability=0.0, seed=1
        )
        collector.collect(line_series)

        measured = collector.measured_traffic_series()
        assert len(measured) == len(line_series)
        truth = line_series.as_array()
        recovered = measured.as_array()
        assert np.allclose(recovered, truth, rtol=1e-6, atol=1e-3)

        loads = collector.measured_link_loads()
        assert loads.shape == (len(line_series), routing.num_links)
        expected = routing.link_loads(line_series[0].vector)
        assert np.allclose(loads[0], expected, rtol=1e-6, atol=1e-3)

    def test_reconstruction_with_jitter_and_loss(self, line_network, line_series):
        routing = build_routing_matrix(line_network)
        collector = DistributedCollector(
            routing, num_pollers=3, jitter_std_seconds=2.0, loss_probability=0.1, seed=2
        )
        collector.collect(line_series)
        measured = collector.measured_traffic_series()
        assert np.allclose(measured.as_array(), line_series.as_array(), rtol=0.15, atol=1.0)

    def test_pair_mismatch_rejected(self, line_network, triangle_network):
        routing = build_routing_matrix(line_network)
        collector = DistributedCollector(routing, seed=3)
        series = TrafficMatrixSeries([TrafficMatrix.zeros(triangle_network.node_pairs())])
        with pytest.raises(MeasurementError):
            collector.collect(series)

    def test_at_least_one_poller_required(self, line_network):
        routing = build_routing_matrix(line_network)
        with pytest.raises(MeasurementError):
            DistributedCollector(routing, num_pollers=0)

    def test_objects_spread_over_pollers(self, line_network):
        routing = build_routing_matrix(line_network)
        collector = DistributedCollector(routing, num_pollers=3, seed=4)
        per_poller = [len(p.object_names) for p in collector.pollers]
        assert sum(per_poller) == routing.num_pairs + routing.num_links
        assert max(per_poller) - min(per_poller) <= 1

    def test_archive_timestamps_are_interval_ends(self, line_network, line_series):
        routing = build_routing_matrix(line_network)
        collector = DistributedCollector(
            routing, num_pollers=1, jitter_std_seconds=0.0, loss_probability=0.0, seed=1
        )
        collector.collect(line_series)
        name = collector.pollers[0].object_names[0]
        # The rate of interval k is derived from the poll closing it, so
        # samples are stamped start + (k+1) * interval.
        expected = 300.0 * np.arange(1, len(line_series) + 1)
        assert np.allclose(collector.archive.schedule(name), expected)

    def test_measured_series_aligns_with_driving_series(self, line_network):
        routing = build_routing_matrix(line_network)
        start = 18 * 3600.0
        snapshots = [
            TrafficMatrix.from_network(
                line_network, {NodePair("A", "D"): 100.0 + 10.0 * k}
            )
            for k in range(4)
        ]
        series = TrafficMatrixSeries(snapshots, start_time_seconds=start)
        collector = DistributedCollector(
            routing, num_pollers=2, jitter_std_seconds=0.0, loss_probability=0.0, seed=1
        )
        # start_time defaults to the series' own start time.
        collector.collect(series)
        measured = collector.measured_traffic_series()
        assert np.allclose(measured.timestamps(), series.timestamps())
        truth = series.as_array()
        assert np.allclose(measured.as_array(), truth, rtol=1e-6, atol=1e-3)

    def test_interval_mismatch_rejected(self, line_network, line_series):
        routing = build_routing_matrix(line_network)
        collector = DistributedCollector(routing, interval_seconds=60.0, seed=1)
        with pytest.raises(MeasurementError, match="interval"):
            collector.collect(line_series)

    def test_collection_diagnostics_cover_all_objects(self, line_network, line_series):
        routing = build_routing_matrix(line_network)
        collector = DistributedCollector(
            routing, num_pollers=3, jitter_std_seconds=2.0, loss_probability=0.2, seed=2
        )
        with pytest.raises(MeasurementError):
            collector.collection_diagnostics()
        collector.collect(line_series)
        diagnostics = collector.collection_diagnostics()
        assert diagnostics.num_objects == routing.num_pairs + routing.num_links
        assert diagnostics.num_intervals == len(line_series)
        assert diagnostics.lost_samples > 0
        assert diagnostics.interpolated_samples >= diagnostics.lost_samples

    def test_max_interpolated_fraction_enforced(self, line_network, line_series):
        routing = build_routing_matrix(line_network)
        collector = DistributedCollector(
            routing,
            num_pollers=1,
            jitter_std_seconds=0.0,
            loss_probability=0.3,
            seed=6,
            max_interpolated_fraction=0.1,
        )
        with pytest.raises(MeasurementError, match="interpolated"):
            collector.collect(line_series)
