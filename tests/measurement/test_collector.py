"""Tests for the distributed collector and measurement archive."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import MeasurementError
from repro.measurement import DistributedCollector, MeasurementArchive
from repro.routing import build_routing_matrix
from repro.topology import NodePair
from repro.traffic import TrafficMatrix, TrafficMatrixSeries


class TestArchive:
    def test_record_and_query(self):
        archive = MeasurementArchive()
        archive.record("link", 0.0, 10.0)
        archive.record("link", 300.0, 20.0)
        assert archive.objects() == ("link",)
        assert archive.num_samples("link") == 2
        assert archive.samples("link")[1] == (300.0, 20.0)

    def test_negative_rate_rejected(self):
        with pytest.raises(MeasurementError):
            MeasurementArchive().record("link", 0.0, -5.0)

    def test_unknown_object_rejected(self):
        with pytest.raises(MeasurementError):
            MeasurementArchive().samples("nope")

    def test_rates_matrix_requires_equal_lengths(self):
        archive = MeasurementArchive()
        archive.record("a", 0.0, 1.0)
        archive.record("a", 300.0, 2.0)
        archive.record("b", 0.0, 3.0)
        with pytest.raises(MeasurementError):
            archive.rates_matrix(["a", "b"])
        matrix = archive.rates_matrix(["a"])
        assert matrix.shape == (2, 1)


@pytest.fixture
def line_series(line_network):
    snapshots = [
        TrafficMatrix.from_network(
            line_network, {NodePair("A", "D"): 100.0 + 10.0 * k, NodePair("D", "A"): 50.0}
        )
        for k in range(4)
    ]
    return TrafficMatrixSeries(snapshots)


class TestDistributedCollector:
    def test_end_to_end_reconstruction(self, line_network, line_series):
        routing = build_routing_matrix(line_network)
        collector = DistributedCollector(
            routing, num_pollers=2, jitter_std_seconds=0.0, loss_probability=0.0, seed=1
        )
        collector.collect(line_series)

        measured = collector.measured_traffic_series()
        assert len(measured) == len(line_series)
        truth = line_series.as_array()
        recovered = measured.as_array()
        assert np.allclose(recovered, truth, rtol=1e-6, atol=1e-3)

        loads = collector.measured_link_loads()
        assert loads.shape == (len(line_series), routing.num_links)
        expected = routing.link_loads(line_series[0].vector)
        assert np.allclose(loads[0], expected, rtol=1e-6, atol=1e-3)

    def test_reconstruction_with_jitter_and_loss(self, line_network, line_series):
        routing = build_routing_matrix(line_network)
        collector = DistributedCollector(
            routing, num_pollers=3, jitter_std_seconds=2.0, loss_probability=0.1, seed=2
        )
        collector.collect(line_series)
        measured = collector.measured_traffic_series()
        assert np.allclose(measured.as_array(), line_series.as_array(), rtol=0.15, atol=1.0)

    def test_pair_mismatch_rejected(self, line_network, triangle_network):
        routing = build_routing_matrix(line_network)
        collector = DistributedCollector(routing, seed=3)
        series = TrafficMatrixSeries([TrafficMatrix.zeros(triangle_network.node_pairs())])
        with pytest.raises(MeasurementError):
            collector.collect(series)

    def test_at_least_one_poller_required(self, line_network):
        routing = build_routing_matrix(line_network)
        with pytest.raises(MeasurementError):
            DistributedCollector(routing, num_pollers=0)

    def test_objects_spread_over_pollers(self, line_network):
        routing = build_routing_matrix(line_network)
        collector = DistributedCollector(routing, num_pollers=3, seed=4)
        per_poller = [len(p.object_names) for p in collector.pollers]
        assert sum(per_poller) == routing.num_pairs + routing.num_links
        assert max(per_poller) - min(per_poller) <= 1
