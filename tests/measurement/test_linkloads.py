"""Tests for link-load computation and noise models."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import MeasurementError
from repro.measurement import (
    GaussianNoiseModel,
    LinkLoadObservation,
    NoiselessModel,
    link_load_series,
    link_loads_from_matrix,
)
from repro.routing import build_routing_matrix
from repro.topology import NodePair
from repro.traffic import TrafficMatrix, TrafficMatrixSeries


class TestObservation:
    def test_basic_access(self):
        obs = LinkLoadObservation(link_names=("a", "b"), loads=np.array([1.0, 2.0]))
        assert obs.load_of("b") == 2.0
        assert obs.total() == 3.0

    def test_unknown_link_rejected(self):
        obs = LinkLoadObservation(link_names=("a",), loads=np.array([1.0]))
        with pytest.raises(MeasurementError):
            obs.load_of("z")

    def test_shape_mismatch_rejected(self):
        with pytest.raises(MeasurementError):
            LinkLoadObservation(link_names=("a", "b"), loads=np.array([1.0]))

    def test_negative_loads_rejected(self):
        with pytest.raises(MeasurementError):
            LinkLoadObservation(link_names=("a",), loads=np.array([-1.0]))


class TestComputation:
    def test_consistent_with_routing_matrix(self, line_network):
        routing = build_routing_matrix(line_network)
        demands = {NodePair("A", "D"): 10.0, NodePair("B", "C"): 4.0}
        traffic = TrafficMatrix.from_network(line_network, demands)
        obs = link_loads_from_matrix(routing, traffic)
        assert obs.load_of("A->B") == pytest.approx(10.0)
        assert obs.load_of("B->C") == pytest.approx(14.0)
        assert obs.load_of("C->D") == pytest.approx(10.0)
        assert obs.load_of("D->C") == pytest.approx(0.0)

    def test_pair_order_mismatch_rejected(self, line_network, triangle_network):
        routing = build_routing_matrix(line_network)
        traffic = TrafficMatrix.zeros(triangle_network.node_pairs())
        with pytest.raises(MeasurementError):
            link_loads_from_matrix(routing, traffic)

    def test_series_computation(self, line_network):
        routing = build_routing_matrix(line_network)
        snapshots = [
            TrafficMatrix.from_network(line_network, {NodePair("A", "D"): float(k)})
            for k in range(1, 4)
        ]
        series = TrafficMatrixSeries(snapshots)
        loads = link_load_series(routing, series)
        assert loads.shape == (3, routing.num_links)
        index = list(routing.link_names).index("A->B")
        assert np.allclose(loads[:, index], [1.0, 2.0, 3.0])

    def test_series_pair_mismatch_rejected(self, line_network, triangle_network):
        routing = build_routing_matrix(line_network)
        series = TrafficMatrixSeries([TrafficMatrix.zeros(triangle_network.node_pairs())])
        with pytest.raises(MeasurementError):
            link_load_series(routing, series)


class TestNoiseModels:
    def test_noiseless_is_identity(self):
        loads = np.array([1.0, 2.0, 3.0])
        assert np.allclose(NoiselessModel().apply(loads, np.random.default_rng(0)), loads)

    def test_gaussian_noise_perturbs_but_stays_non_negative(self):
        loads = np.full(1000, 10.0)
        noisy = GaussianNoiseModel(relative_std=0.05).apply(loads, np.random.default_rng(1))
        assert noisy.shape == loads.shape
        assert np.all(noisy >= 0)
        assert not np.allclose(noisy, loads)
        assert abs(noisy.mean() - 10.0) < 0.2

    def test_negative_std_rejected(self):
        with pytest.raises(MeasurementError):
            GaussianNoiseModel(relative_std=-0.1)

    def test_noise_applied_through_pipeline(self, line_network):
        routing = build_routing_matrix(line_network)
        traffic = TrafficMatrix.from_network(line_network, {NodePair("A", "D"): 100.0})
        noisy = link_loads_from_matrix(
            routing,
            traffic,
            noise=GaussianNoiseModel(relative_std=0.1),
            rng=np.random.default_rng(2),
        )
        clean = link_loads_from_matrix(routing, traffic)
        assert not np.allclose(noisy.loads, clean.loads)


class TestDeterministicDefaults:
    """No-argument noise draws must be reproducible run to run.

    The reprolint ``determinism`` rule flagged the old ``rng or
    np.random.default_rng()`` fallbacks here: two identical calls without
    an explicit generator produced different noise, so any record built on
    them could not be reproduced.  The fallback is now a fixed-seed
    generator; callers that want fresh noise pass their own ``rng``.
    """

    def test_snapshot_fallback_rng_is_deterministic(self, line_network):
        routing = build_routing_matrix(line_network)
        traffic = TrafficMatrix.from_network(line_network, {NodePair("A", "D"): 100.0})
        noise = GaussianNoiseModel(relative_std=0.1)
        first = link_loads_from_matrix(routing, traffic, noise=noise)
        second = link_loads_from_matrix(routing, traffic, noise=noise)
        np.testing.assert_array_equal(first.loads, second.loads)

    def test_series_fallback_rng_is_deterministic(self, line_network):
        routing = build_routing_matrix(line_network)
        snapshots = [
            TrafficMatrix.from_network(line_network, {NodePair("A", "D"): value})
            for value in (50.0, 75.0)
        ]
        series = TrafficMatrixSeries(snapshots)
        noise = GaussianNoiseModel(relative_std=0.1)
        first = link_load_series(routing, series, noise=noise)
        second = link_load_series(routing, series, noise=noise)
        np.testing.assert_array_equal(first, second)

    def test_explicit_rng_still_draws_fresh_noise(self, line_network):
        routing = build_routing_matrix(line_network)
        traffic = TrafficMatrix.from_network(line_network, {NodePair("A", "D"): 100.0})
        noise = GaussianNoiseModel(relative_std=0.1)
        rng = np.random.default_rng(7)
        first = link_loads_from_matrix(routing, traffic, noise=noise, rng=rng)
        second = link_loads_from_matrix(routing, traffic, noise=noise, rng=rng)
        assert not np.allclose(first.loads, second.loads)
