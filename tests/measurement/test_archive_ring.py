"""Bounded-archive eviction and per-interval validity masks (PR 10 satellites)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import telemetry
from repro.errors import MeasurementError
from repro.measurement.collector import DistributedCollector, MeasurementArchive
from repro.measurement.snmp import SNMPPoller, rates_from_poll_matrix
from repro.routing import build_routing_matrix


@pytest.fixture(autouse=True)
def _telemetry_clean():
    telemetry.disable()
    telemetry.reset_telemetry()
    yield
    telemetry.disable()
    telemetry.reset_telemetry()


class TestArchiveRingBuffer:
    def test_record_evicts_oldest_beyond_bound(self):
        archive = MeasurementArchive(max_samples=3)
        for step in range(6):
            archive.record("link", float(step), float(step * 10))
        assert archive.num_samples("link") == 3
        assert archive.evicted_samples == 3
        assert archive.samples("link") == ((3.0, 30.0), (4.0, 40.0), (5.0, 50.0))

    def test_record_block_evicts_across_blocks(self):
        archive = MeasurementArchive(max_samples=4)
        archive.record_block(["link"], np.arange(3.0), np.arange(3.0).reshape(3, 1))
        archive.record_block(
            ["link"], 3.0 + np.arange(3.0), (3.0 + np.arange(3.0)).reshape(3, 1)
        )
        assert archive.num_samples("link") == 4
        timestamps = [sample[0] for sample in archive.samples("link")]
        assert timestamps == [2.0, 3.0, 4.0, 5.0]
        assert archive.evicted_samples == 2

    def test_unbounded_archive_never_evicts(self):
        archive = MeasurementArchive()
        for step in range(100):
            archive.record("link", float(step), 1.0)
        assert archive.num_samples("link") == 100
        assert archive.evicted_samples == 0

    def test_non_positive_bound_rejected(self):
        with pytest.raises(MeasurementError):
            MeasurementArchive(max_samples=0)

    def test_retention_gauges_published(self):
        telemetry.enable()
        archive = MeasurementArchive(max_samples=5)
        for step in range(8):
            archive.record("a", float(step), 1.0)
            archive.record("b", float(step), 2.0)
        gauges = telemetry.metrics_snapshot()["gauges"]
        assert gauges["archive.retained_samples"] == 10.0  # 5 per object
        assert gauges["archive.retained_bytes"] == 10.0 * 16

    def test_collector_forwards_bound(self):
        from repro.datasets import small_scenario

        scenario = small_scenario(seed=11, num_nodes=4, num_samples=10)
        collector = DistributedCollector(
            scenario.routing,
            num_pollers=2,
            jitter_std_seconds=0.0,
            loss_probability=0.0,
            seed=1,
            archive_max_samples=4,
        )
        collector.collect(scenario.day_series)
        for name in collector.link_object_names:
            assert collector.archive.num_samples(name) <= 4
        assert collector.archive.evicted_samples > 0


class TestValidityMask:
    def test_clean_polls_are_fully_valid(self):
        poller = SNMPPoller(("a", "b"), jitter_std_seconds=0.0, seed=0)
        polls = poller.run_schedule_matrix(np.full((6, 2), 10.0))
        _, diagnostics = rates_from_poll_matrix(polls)
        assert diagnostics.validity is not None
        assert diagnostics.validity.shape == (6, 2)
        assert diagnostics.validity.all()
        assert not diagnostics.validity.flags.writeable

    def test_lost_polls_marked_invalid(self):
        poller = SNMPPoller(("a", "b", "c"), jitter_std_seconds=0.0,
                            loss_probability=0.3, seed=3)
        polls = poller.run_schedule_matrix(np.full((20, 3), 10.0))
        _, diagnostics = rates_from_poll_matrix(polls)
        validity = diagnostics.validity
        assert validity is not None
        # Interpolated sample accounting and the mask must agree.
        assert int((~validity).sum()) == diagnostics.interpolated_samples
        # A lost poll invalidates both adjacent intervals.
        lost_rounds, lost_objects = np.nonzero(polls.lost)
        for round_index, object_index in zip(lost_rounds, lost_objects):
            if round_index < validity.shape[0]:
                assert not validity[round_index, object_index]
            if round_index > 0:
                assert not validity[round_index - 1, object_index]

    def test_merged_diagnostics_concatenate_masks(self):
        poller_a = SNMPPoller(("a",), jitter_std_seconds=0.0, loss_probability=0.5, seed=1)
        poller_b = SNMPPoller(("b",), jitter_std_seconds=0.0, loss_probability=0.0, seed=2)
        _, diag_a = rates_from_poll_matrix(poller_a.run_schedule_matrix(np.full((8, 1), 10.0)))
        _, diag_b = rates_from_poll_matrix(poller_b.run_schedule_matrix(np.full((8, 1), 10.0)))
        merged = diag_a.merged(diag_b)
        assert merged.validity is not None
        assert merged.validity.shape == (8, 2)
        np.testing.assert_array_equal(merged.validity[:, 0], diag_a.validity[:, 0])
        np.testing.assert_array_equal(merged.validity[:, 1], diag_b.validity[:, 0])

    def test_merged_without_mask_drops_it(self):
        poller = SNMPPoller(("a",), jitter_std_seconds=0.0, seed=1)
        _, diagnostics = rates_from_poll_matrix(poller.run_schedule_matrix(np.full((4, 1), 10.0)))
        import dataclasses

        stripped = dataclasses.replace(diagnostics, validity=None)
        assert diagnostics.merged(stripped).validity is None
