"""Tests for the NNLS solvers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import SolverError
from repro.optimize import nnls, nnls_active_set, nnls_projected_gradient


def random_problem(rows, cols, seed=0):
    rng = np.random.default_rng(seed)
    A = rng.normal(size=(rows, cols))
    x_true = np.maximum(rng.normal(size=cols), 0.0)
    b = A @ x_true
    return A, b, x_true


class TestActiveSet:
    def test_recovers_nonnegative_solution(self):
        A, b, x_true = random_problem(30, 10, seed=1)
        result = nnls_active_set(A, b)
        assert np.all(result.x >= 0)
        assert result.residual_norm < 1e-8

    def test_shape_validation(self):
        with pytest.raises(SolverError):
            nnls_active_set(np.ones((3, 2)), np.ones(4))
        with pytest.raises(SolverError):
            nnls_active_set(np.ones(3), np.ones(3))


class TestProjectedGradient:
    def test_matches_active_set_on_small_problem(self):
        A, b, _ = random_problem(40, 15, seed=2)
        exact = nnls_active_set(A, b)
        approx = nnls_projected_gradient(A, b, max_iterations=20000, tolerance=1e-14)
        assert approx.residual_norm == pytest.approx(exact.residual_norm, abs=1e-4)
        assert np.allclose(approx.x, exact.x, atol=1e-3)

    def test_enforces_nonnegativity_when_unconstrained_solution_is_negative(self):
        A = np.array([[1.0, 0.0], [0.0, 1.0], [1.0, 1.0]])
        b = np.array([-1.0, 2.0, 1.0])
        result = nnls_projected_gradient(A, b)
        assert np.all(result.x >= 0)
        assert result.x[0] == pytest.approx(0.0, abs=1e-6)

    def test_warm_start_accepted(self):
        A, b, x_true = random_problem(20, 8, seed=3)
        result = nnls_projected_gradient(A, b, x0=x_true)
        assert result.residual_norm < 1e-6

    def test_invalid_inputs_rejected(self):
        A, b, _ = random_problem(5, 3, seed=4)
        with pytest.raises(SolverError):
            nnls_projected_gradient(A, b, max_iterations=0)
        with pytest.raises(SolverError):
            nnls_projected_gradient(A, b, x0=np.ones(7))

    def test_reports_iterations_and_convergence(self):
        A, b, _ = random_problem(20, 8, seed=5)
        result = nnls_projected_gradient(A, b)
        assert result.iterations > 0
        assert result.converged


class TestDispatcher:
    def test_auto_uses_active_set_for_small_problems(self):
        A, b, _ = random_problem(30, 10, seed=6)
        result = nnls(A, b)
        assert result.residual_norm < 1e-8

    def test_explicit_solver_selection(self):
        A, b, _ = random_problem(30, 10, seed=7)
        pg = nnls(A, b, prefer="projected-gradient")
        act = nnls(A, b, prefer="active-set")
        assert pg.residual_norm == pytest.approx(act.residual_norm, abs=1e-4)

    def test_unknown_preference_rejected(self):
        A, b, _ = random_problem(5, 3, seed=8)
        with pytest.raises(SolverError):
            nnls(A, b, prefer="magic")
