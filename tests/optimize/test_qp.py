"""Tests for constrained least squares and the non-negative QP solver."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import SolverError
from repro.optimize import (
    constrained_nnls,
    equality_constrained_least_squares,
    nonnegative_quadratic_program,
    symmetric_spectral_norm,
)


class TestEqualityConstrainedLS:
    def test_constraint_satisfied_exactly(self):
        rng = np.random.default_rng(0)
        A = rng.normal(size=(10, 4))
        b = rng.normal(size=10)
        E = np.ones((1, 4))
        f = np.array([1.0])
        result = equality_constrained_least_squares(A, b, E, f)
        assert result.equality_violation < 1e-8
        assert result.x.sum() == pytest.approx(1.0, abs=1e-8)

    def test_reduces_to_least_squares_without_binding_constraint(self):
        rng = np.random.default_rng(1)
        A = rng.normal(size=(12, 3))
        x_true = np.array([1.0, 2.0, 3.0])
        b = A @ x_true
        E = np.array([[1.0, 1.0, 1.0]])
        f = np.array([6.0])  # already satisfied by the LS solution
        result = equality_constrained_least_squares(A, b, E, f)
        assert np.allclose(result.x, x_true, atol=1e-8)
        assert result.residual_norm < 1e-8

    def test_shape_validation(self):
        with pytest.raises(SolverError):
            equality_constrained_least_squares(np.ones((3, 2)), np.ones(3), np.ones((1, 3)), np.ones(1))
        with pytest.raises(SolverError):
            equality_constrained_least_squares(np.ones((3, 2)), np.ones(2), np.ones((1, 2)), np.ones(1))


class TestConstrainedNNLS:
    def test_simplex_constraint_and_nonnegativity(self):
        rng = np.random.default_rng(2)
        A = rng.normal(size=(20, 5))
        x_true = np.array([0.5, 0.3, 0.2, 0.0, 0.0])
        b = A @ x_true
        E = np.ones((1, 5))
        f = np.array([1.0])
        result = constrained_nnls(A, b, E, f)
        assert np.all(result.x >= -1e-9)
        assert result.x.sum() == pytest.approx(1.0, abs=1e-3)
        assert np.allclose(result.x, x_true, atol=1e-2)

    def test_explicit_penalty_weight(self):
        A = np.eye(3)
        b = np.array([1.0, 2.0, 3.0])
        E = np.ones((1, 3))
        f = np.array([6.0])
        result = constrained_nnls(A, b, E, f, penalty_weight=1e6)
        assert result.equality_violation < 1e-3

    def test_invalid_penalty_rejected(self):
        with pytest.raises(SolverError):
            constrained_nnls(np.eye(2), np.ones(2), np.ones((1, 2)), np.ones(1), penalty_weight=-1.0)


class TestNonnegativeQP:
    def test_matches_unconstrained_solution_when_interior(self):
        rng = np.random.default_rng(3)
        root = rng.normal(size=(6, 6))
        G = root.T @ root + np.eye(6)
        x_true = np.abs(rng.normal(size=6)) + 0.5
        h = G @ x_true
        result = nonnegative_quadratic_program(G, h, tolerance=1e-14)
        assert np.allclose(result.x, x_true, atol=1e-4)
        assert result.converged

    def test_clamps_at_zero_when_unconstrained_solution_negative(self):
        G = np.eye(2)
        h = np.array([-1.0, 2.0])
        result = nonnegative_quadratic_program(G, h)
        assert result.x[0] == pytest.approx(0.0, abs=1e-8)
        assert result.x[1] == pytest.approx(2.0, abs=1e-6)

    def test_objective_value_reported(self):
        G = np.eye(2)
        h = np.array([1.0, 1.0])
        result = nonnegative_quadratic_program(G, h)
        assert result.objective == pytest.approx(-2.0, abs=1e-6)

    def test_validation(self):
        with pytest.raises(SolverError):
            nonnegative_quadratic_program(np.ones((2, 3)), np.ones(2))
        with pytest.raises(SolverError):
            nonnegative_quadratic_program(np.eye(2), np.ones(3))
        with pytest.raises(SolverError):
            nonnegative_quadratic_program(np.array([[1.0, 2.0], [0.0, 1.0]]), np.ones(2))
        with pytest.raises(SolverError):
            nonnegative_quadratic_program(np.eye(2), np.ones(2), max_iterations=0)
        with pytest.raises(SolverError):
            nonnegative_quadratic_program(np.eye(2), np.ones(2), x0=np.ones(3))

    def test_warm_start_converges_faster_to_the_same_point(self):
        rng = np.random.default_rng(9)
        A = rng.random((30, 20))
        G = A.T @ A + 0.1 * np.eye(20)
        h = G @ (np.abs(rng.normal(size=20)) + 0.1)
        cold = nonnegative_quadratic_program(G, h, tolerance=1e-14)
        warm = nonnegative_quadratic_program(G, h, x0=cold.x, tolerance=1e-14)
        assert warm.iterations < cold.iterations
        assert np.allclose(warm.x, cold.x, atol=1e-3)


class TestSymmetricSpectralNorm:
    @pytest.mark.parametrize("seed", range(5))
    def test_matches_exact_norm_on_gram_matrices(self, seed):
        rng = np.random.default_rng(seed)
        A = rng.random((25, 15))
        G = A.T @ A
        exact = float(np.linalg.norm(G, 2))
        estimate = symmetric_spectral_norm(G)
        # Never an underestimate (the safety factor guarantees valid step
        # sizes), and tight to about the safety factor.
        assert estimate >= exact * (1 - 1e-6)
        assert estimate <= exact * 1.05

    def test_deterministic(self):
        rng = np.random.default_rng(3)
        A = rng.random((10, 10))
        G = A.T @ A
        assert symmetric_spectral_norm(G) == symmetric_spectral_norm(G)

    def test_zero_and_empty_matrices(self):
        assert symmetric_spectral_norm(np.zeros((4, 4))) == 0.0
        assert symmetric_spectral_norm(np.zeros((0, 0))) == 0.0

    def test_rejects_non_square(self):
        with pytest.raises(SolverError):
            symmetric_spectral_norm(np.ones((2, 3)))
