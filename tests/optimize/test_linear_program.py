"""Tests for the linear-programming wrapper."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import SolverError
from repro.optimize import bound_variable, solve_linear_program


class TestSolveLP:
    def test_minimisation_on_simplex(self):
        cost = np.array([1.0, 2.0, 3.0])
        A = np.ones((1, 3))
        b = np.array([1.0])
        result = solve_linear_program(cost, A, b)
        assert result.objective == pytest.approx(1.0)
        assert result.x[0] == pytest.approx(1.0)

    def test_maximisation_on_simplex(self):
        cost = np.array([1.0, 2.0, 3.0])
        A = np.ones((1, 3))
        b = np.array([1.0])
        result = solve_linear_program(cost, A, b, maximise=True)
        assert result.objective == pytest.approx(3.0)
        assert result.x[2] == pytest.approx(1.0)

    def test_upper_bounds_respected(self):
        cost = np.array([1.0, 1.0])
        result = solve_linear_program(
            cost,
            np.array([[1.0, 1.0]]),
            np.array([3.0]),
            upper_bounds=np.array([2.0, 2.0]),
            maximise=True,
        )
        assert result.objective == pytest.approx(3.0)
        assert np.all(result.x <= 2.0 + 1e-9)

    def test_infeasible_problem_raises(self):
        cost = np.array([1.0])
        A = np.array([[1.0]])
        b = np.array([-5.0])  # x >= 0 cannot satisfy x = -5
        with pytest.raises(SolverError):
            solve_linear_program(cost, A, b)

    def test_unbounded_problem_raises(self):
        with pytest.raises(SolverError):
            solve_linear_program(np.array([1.0, -1.0]), maximise=True)

    def test_validation(self):
        with pytest.raises(SolverError):
            solve_linear_program(np.ones((2, 2)))
        with pytest.raises(SolverError):
            solve_linear_program(np.ones(2), equality_matrix=np.ones((1, 2)))
        with pytest.raises(SolverError):
            solve_linear_program(np.ones(2), np.ones((1, 3)), np.ones(1))
        with pytest.raises(SolverError):
            solve_linear_program(np.ones(2), upper_bounds=np.ones(3))


class TestBoundVariable:
    def test_bounds_on_identified_variable(self):
        # x0 + x1 = 10 and x0 = 4 exactly identifies both variables.
        A = np.array([[1.0, 1.0], [1.0, 0.0]])
        b = np.array([10.0, 4.0])
        lower, upper = bound_variable(0, A, b)
        assert lower == pytest.approx(4.0)
        assert upper == pytest.approx(4.0)

    def test_bounds_on_free_variable(self):
        A = np.array([[1.0, 1.0]])
        b = np.array([10.0])
        lower, upper = bound_variable(0, A, b)
        assert lower == pytest.approx(0.0)
        assert upper == pytest.approx(10.0)

    def test_index_out_of_range_rejected(self):
        with pytest.raises(SolverError):
            bound_variable(5, np.ones((1, 2)), np.ones(1))
