"""Tests for Kruithof scaling, generalised iterative scaling and KL divergence."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import SolverError
from repro.optimize import generalized_iterative_scaling, kl_divergence, kruithof_scaling


class TestKLDivergence:
    def test_zero_when_equal(self):
        values = np.array([1.0, 2.0, 3.0])
        assert kl_divergence(values, values) == pytest.approx(0.0)

    def test_positive_when_different(self):
        assert kl_divergence(np.array([1.0, 3.0]), np.array([2.0, 2.0])) > 0.0

    def test_zero_value_against_positive_prior_is_finite(self):
        assert np.isfinite(kl_divergence(np.array([0.0, 1.0]), np.array([1.0, 1.0])))

    def test_positive_value_against_zero_prior_is_infinite(self):
        assert kl_divergence(np.array([1.0]), np.array([0.0])) == float("inf")

    def test_validation(self):
        with pytest.raises(SolverError):
            kl_divergence(np.ones(2), np.ones(3))
        with pytest.raises(SolverError):
            kl_divergence(np.array([-1.0]), np.array([1.0]))


class TestKruithofScaling:
    def test_row_and_column_sums_match_targets(self):
        prior = np.ones((3, 3))
        rows = np.array([10.0, 20.0, 30.0])
        cols = np.array([15.0, 15.0, 30.0])
        result = kruithof_scaling(prior, rows, cols)
        assert result.converged
        assert np.allclose(result.values.sum(axis=1), rows, rtol=1e-6)
        assert np.allclose(result.values.sum(axis=0), cols, rtol=1e-6)

    def test_zero_prior_entries_stay_zero(self):
        prior = np.array([[0.0, 1.0], [1.0, 1.0]])
        result = kruithof_scaling(prior, np.array([5.0, 10.0]), np.array([6.0, 9.0]))
        assert result.values[0, 0] == 0.0

    def test_mismatched_totals_are_rescaled(self):
        prior = np.ones((2, 2))
        result = kruithof_scaling(prior, np.array([10.0, 10.0]), np.array([5.0, 5.0]))
        # Column targets are rescaled to the row total (20), so the fit succeeds.
        assert np.allclose(result.values.sum(axis=1), [10.0, 10.0], rtol=1e-6)

    def test_preserves_prior_structure(self):
        """Kruithof keeps the cross-product ratios of the prior (KL projection)."""
        prior = np.array([[4.0, 1.0], [1.0, 4.0]])
        result = kruithof_scaling(prior, np.array([10.0, 10.0]), np.array([10.0, 10.0]))
        fitted = result.values
        prior_ratio = (prior[0, 0] * prior[1, 1]) / (prior[0, 1] * prior[1, 0])
        fitted_ratio = (fitted[0, 0] * fitted[1, 1]) / (fitted[0, 1] * fitted[1, 0])
        assert fitted_ratio == pytest.approx(prior_ratio, rel=1e-6)

    def test_validation(self):
        with pytest.raises(SolverError):
            kruithof_scaling(np.ones(3), np.ones(3), np.ones(3))
        with pytest.raises(SolverError):
            kruithof_scaling(np.ones((2, 2)), np.ones(3), np.ones(2))
        with pytest.raises(SolverError):
            kruithof_scaling(-np.ones((2, 2)), np.ones(2), np.ones(2))
        with pytest.raises(SolverError):
            kruithof_scaling(np.ones((2, 2)), np.zeros(2), np.zeros(2))


class TestGeneralizedIterativeScaling:
    def test_projects_onto_consistent_constraints(self):
        # Two demands sharing one link plus one individually measured demand.
        routing = np.array([[1.0, 1.0, 0.0], [0.0, 0.0, 1.0]])
        prior = np.array([2.0, 2.0, 5.0])
        target = np.array([10.0, 3.0])
        result = generalized_iterative_scaling(prior, routing, target)
        assert result.converged
        assert np.allclose(routing @ result.values, target, atol=1e-4)
        # The prior split was 50/50, so the projection keeps it.
        assert result.values[0] == pytest.approx(5.0, rel=1e-3)
        assert result.values[1] == pytest.approx(5.0, rel=1e-3)

    def test_respects_prior_proportions(self):
        routing = np.array([[1.0, 1.0]])
        prior = np.array([3.0, 1.0])
        target = np.array([8.0])
        result = generalized_iterative_scaling(prior, routing, target)
        assert result.values[0] == pytest.approx(6.0, rel=1e-4)
        assert result.values[1] == pytest.approx(2.0, rel=1e-4)

    def test_zero_prior_entries_stay_zero(self):
        routing = np.array([[1.0, 1.0]])
        prior = np.array([0.0, 1.0])
        result = generalized_iterative_scaling(prior, routing, np.array([4.0]))
        assert result.values[0] == 0.0
        assert result.values[1] == pytest.approx(4.0, rel=1e-6)

    def test_validation(self):
        with pytest.raises(SolverError):
            generalized_iterative_scaling(np.ones((2, 2)), np.ones((1, 2)), np.ones(1))
        with pytest.raises(SolverError):
            generalized_iterative_scaling(np.ones(2), np.ones((1, 3)), np.ones(1))
        with pytest.raises(SolverError):
            generalized_iterative_scaling(np.ones(2), 2 * np.ones((1, 2)), np.ones(1))
        with pytest.raises(SolverError):
            generalized_iterative_scaling(-np.ones(2), np.ones((1, 2)), np.ones(1))
