"""Tests for the batched worst-case-bound engine.

Three layers of guarantees:

* **parity** — :func:`bound_variables_batch` must reproduce the per-pair
  LP bounds exactly (within solver tolerance), with and without presolve,
  in-process and across a process pool, on hand-built systems, random
  feasible systems, and the europe/abilene scenarios (slow);
* **presolve soundness** — the combinatorial intervals of
  :func:`presolve_variable_bounds` always *contain* the LP bounds
  (property test on random routing systems);
* **failure modes** — infeasible and unbounded systems raise
  :class:`~repro.errors.SolverError` exactly like the per-pair path, even
  when the presolve resolves every requested coordinate.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import SolverError
from repro.optimize.linear_program import (
    bound_variable,
    bound_variables_batch,
    presolve_variable_bounds,
    solve_linear_program,
)


def reference_bounds(matrix, rhs):
    """The serial per-pair LP loop the batch engine replaces."""
    num_vars = matrix.shape[1]
    lower = np.empty(num_vars)
    upper = np.empty(num_vars)
    for index in range(num_vars):
        cost = np.zeros(num_vars)
        cost[index] = 1.0
        lower[index] = solve_linear_program(cost, matrix, rhs, maximise=False).objective
        upper[index] = solve_linear_program(cost, matrix, rhs, maximise=True).objective
    return lower, upper


def random_routing_system(rng, num_rows=12, num_vars=18):
    """A random 0/1 routing-like system with a known feasible point."""
    matrix = (rng.random((num_rows, num_vars)) < 0.3).astype(float)
    matrix[rng.integers(num_rows, size=num_vars), np.arange(num_vars)] = 1.0
    truth = rng.random(num_vars) * 10.0
    return matrix, matrix @ truth


class TestBatchMatchesPerPairLoop:
    def test_hand_built_system(self):
        matrix = np.array(
            [
                [1.0, 1.0, 0.0, 0.0],
                [0.0, 1.0, 1.0, 0.0],
                [0.0, 0.0, 1.0, 1.0],
            ]
        )
        rhs = matrix @ np.array([2.0, 3.0, 1.0, 4.0])
        lower_ref, upper_ref = reference_bounds(matrix, rhs)
        result = bound_variables_batch(range(4), matrix, rhs)
        np.testing.assert_allclose(result.lower, lower_ref, atol=1e-8)
        np.testing.assert_allclose(result.upper, upper_ref, atol=1e-8)

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_random_systems(self, seed):
        rng = np.random.default_rng(seed)
        matrix, rhs = random_routing_system(rng)
        lower_ref, upper_ref = reference_bounds(matrix, rhs)
        scale = max(1.0, float(rhs.max()))
        result = bound_variables_batch(range(matrix.shape[1]), matrix, rhs)
        np.testing.assert_allclose(result.lower, lower_ref, atol=1e-7 * scale)
        np.testing.assert_allclose(result.upper, upper_ref, atol=1e-7 * scale)

    def test_presolve_off_matches_presolve_on(self):
        rng = np.random.default_rng(7)
        matrix, rhs = random_routing_system(rng)
        on = bound_variables_batch(range(matrix.shape[1]), matrix, rhs, presolve=True)
        off = bound_variables_batch(range(matrix.shape[1]), matrix, rhs, presolve=False)
        scale = max(1.0, float(rhs.max()))
        np.testing.assert_allclose(on.lower, off.lower, atol=1e-7 * scale)
        np.testing.assert_allclose(on.upper, off.upper, atol=1e-7 * scale)
        assert off.num_pinned == 0 and off.num_tight == 0

    def test_subset_and_order_preserved(self):
        rng = np.random.default_rng(11)
        matrix, rhs = random_routing_system(rng)
        subset = [5, 2, 9]
        full = bound_variables_batch(range(matrix.shape[1]), matrix, rhs)
        partial = bound_variables_batch(subset, matrix, rhs)
        assert partial.indices == tuple(subset)
        np.testing.assert_allclose(partial.lower, full.lower[subset], atol=1e-8)
        np.testing.assert_allclose(partial.upper, full.upper[subset], atol=1e-8)

    def test_process_pool_matches_in_process(self, monkeypatch):
        # Present at least two cores so the CPU clamp (which keeps
        # single-core boxes serial) does not bypass the pool under test.
        import os

        monkeypatch.setattr(os, "cpu_count", lambda: 2)
        rng = np.random.default_rng(13)
        matrix, rhs = random_routing_system(rng, num_rows=8, num_vars=12)
        serial = bound_variables_batch(range(12), matrix, rhs, n_jobs=1)
        pooled = bound_variables_batch(range(12), matrix, rhs, n_jobs=2, chunk_size=3)
        assert pooled.n_jobs == 2
        np.testing.assert_allclose(pooled.lower, serial.lower, atol=1e-8)
        np.testing.assert_allclose(pooled.upper, serial.upper, atol=1e-8)

    def test_sparse_input_accepted(self):
        import scipy.sparse

        rng = np.random.default_rng(17)
        matrix, rhs = random_routing_system(rng)
        dense = bound_variables_batch(range(matrix.shape[1]), matrix, rhs)
        sparse = bound_variables_batch(
            range(matrix.shape[1]), scipy.sparse.csr_matrix(matrix), rhs
        )
        np.testing.assert_allclose(sparse.lower, dense.lower, atol=1e-9)
        np.testing.assert_allclose(sparse.upper, dense.upper, atol=1e-9)

    def test_thin_wrapper_bound_variable(self):
        matrix = np.array([[1.0, 1.0], [0.0, 1.0]])
        rhs = np.array([10.0, 4.0])
        assert bound_variable(0, matrix, rhs) == pytest.approx((6.0, 6.0))
        assert bound_variable(1, matrix, rhs) == pytest.approx((4.0, 4.0))


class TestPresolveSoundness:
    @pytest.mark.parametrize("seed", range(8))
    def test_combinatorial_interval_contains_lp_bounds(self, seed):
        """Property: presolve bounds always contain the exact LP bounds."""
        rng = np.random.default_rng(100 + seed)
        matrix, rhs = random_routing_system(
            rng, num_rows=int(rng.integers(6, 14)), num_vars=int(rng.integers(8, 20))
        )
        lower_lp, upper_lp = reference_bounds(matrix, rhs)
        lower_pre, upper_pre, pinned = presolve_variable_bounds(matrix, rhs)
        scale = max(1.0, float(rhs.max()))
        assert np.all(lower_pre <= lower_lp + 1e-6 * scale)
        assert np.all(upper_lp <= upper_pre + 1e-6 * scale)
        # Pinned coordinates are exact, not just contained.
        np.testing.assert_allclose(
            lower_pre[pinned], lower_lp[pinned], atol=1e-6 * scale
        )
        np.testing.assert_allclose(
            upper_pre[pinned], upper_lp[pinned], atol=1e-6 * scale
        )

    def test_fractional_entries_supported(self):
        """ECMP-style fractional coefficients keep the bounds sound."""
        rng = np.random.default_rng(42)
        matrix = (rng.random((10, 14)) < 0.3).astype(float)
        matrix[rng.integers(10, size=14), np.arange(14)] = 1.0
        matrix *= rng.choice([0.5, 1.0], size=matrix.shape)
        rhs = matrix @ (rng.random(14) * 5.0)
        lower_lp, upper_lp = reference_bounds(matrix, rhs)
        lower_pre, upper_pre, _ = presolve_variable_bounds(matrix, rhs)
        scale = max(1.0, float(rhs.max()))
        assert np.all(lower_pre <= lower_lp + 1e-6 * scale)
        assert np.all(upper_lp <= upper_pre + 1e-6 * scale)

    def test_negative_coefficients_fall_back_to_trivial_interval(self):
        matrix = np.array([[1.0, -1.0]])
        rhs = np.array([1.0])
        lower, upper, pinned = presolve_variable_bounds(matrix, rhs)
        assert np.all(lower == 0.0)
        assert np.all(np.isinf(upper) | pinned)


class TestFailureModes:
    def test_infeasible_system_raises(self):
        matrix = np.array([[1.0, 0.0]])
        rhs = np.array([-1.0])
        with pytest.raises(SolverError):
            bound_variables_batch([0, 1], matrix, rhs)

    def test_infeasible_detected_even_when_fully_presolved(self):
        # x1 = 5 and x1 = 7 cannot both hold; both coordinates are pinned
        # by rank, so no bounding LP would ever run without the explicit
        # feasibility check.
        matrix = np.array([[1.0, 0.0], [1.0, 0.0], [0.0, 1.0]])
        rhs = np.array([5.0, 7.0, 1.0])
        with pytest.raises(SolverError):
            bound_variables_batch([0, 1], matrix, rhs)

    def test_unbounded_coordinate_raises(self):
        matrix = np.array([[1.0, 0.0]])
        rhs = np.array([5.0])
        with pytest.raises(SolverError):
            bound_variables_batch([1], matrix, rhs)

    def test_index_out_of_range(self):
        matrix = np.array([[1.0, 1.0]])
        rhs = np.array([1.0])
        with pytest.raises(SolverError):
            bound_variables_batch([2], matrix, rhs)
        with pytest.raises(SolverError):
            bound_variables_batch([-1], matrix, rhs)

    def test_empty_request(self):
        matrix = np.array([[1.0, 1.0]])
        rhs = np.array([1.0])
        result = bound_variables_batch([], matrix, rhs)
        assert result.indices == ()
        assert result.lower.shape == (0,)


@pytest.mark.slow
class TestScenarioParity:
    """The acceptance parity: batch == per-pair loop on real scenarios."""

    @pytest.mark.parametrize("builder", ["europe_scenario", "abilene_scenario"])
    def test_batch_reproduces_per_pair_bounds(self, builder):
        import repro.datasets as datasets

        scenario = getattr(datasets, builder)()
        problem = scenario.snapshot_problem()
        matrix, rhs = problem.augmented_system()
        num_pairs = problem.num_pairs
        lower_ref, upper_ref = reference_bounds(matrix, rhs)
        result = bound_variables_batch(range(num_pairs), matrix, rhs)
        scale = max(1.0, float(np.asarray(rhs).max()))
        np.testing.assert_allclose(result.lower, lower_ref, atol=1e-6 * scale)
        np.testing.assert_allclose(result.upper, upper_ref, atol=1e-6 * scale)
        # The reductions must actually bite: between rank pinning, tight
        # combinatorial intervals and zero witnesses, strictly fewer than
        # the naive two LPs per pair may run.  (Rank pinning specifically
        # only fires on the denser scenarios, e.g. europe.)
        assert result.num_lps_solved < 2 * num_pairs
        assert result.num_pinned + result.num_tight + result.num_lower_skipped > 0
