"""Tests for the measurement-noise robustness sweep runner."""

from __future__ import annotations

import numpy as np
import pytest

from repro.evaluation.experiments import (
    RobustnessRecord,
    method_comparison,
    robustness_sweep,
    robustness_table,
)

METHODS = ("gravity", "kruithof")
JITTER = (0.0, 5.0)
LOSS = (0.0, 0.05)


@pytest.fixture(scope="module")
def records(small_scenario_session):
    return robustness_sweep(
        small_scenario_session,
        jitter_values=JITTER,
        loss_values=LOSS,
        methods=METHODS,
        window_length=10,
        seed=4,
    )


class TestRobustnessSweep:
    def test_full_grid_is_covered(self, records):
        assert len(records) == len(JITTER) * len(LOSS) * len(METHODS)
        cells = {(r.method, r.jitter_std_seconds, r.loss_probability) for r in records}
        assert len(cells) == len(records)
        assert all(isinstance(record, RobustnessRecord) for record in records)
        assert all(not record.skipped for record in records)

    def test_zero_noise_cell_matches_consistent_sweep(
        self, small_scenario_session, records
    ):
        consistent = {
            record.method: record.mre
            for record in small_scenario_session.sweep(methods=METHODS, window_length=10)
        }
        for record in records:
            if record.jitter_std_seconds == 0.0 and record.loss_probability == 0.0:
                assert record.mre == pytest.approx(
                    consistent[record.method], rel=1e-4, abs=1e-6
                )

    def test_noise_changes_the_scores(self, records):
        by_cell = {
            (r.method, r.jitter_std_seconds, r.loss_probability): r.mre for r in records
        }
        changed = [
            method
            for method in METHODS
            if not np.isclose(
                by_cell[(method, 0.0, 0.0)],
                by_cell[(method, JITTER[-1], LOSS[-1])],
                rtol=1e-9,
            )
        ]
        assert changed, "noisiest cell scored identically to the noise-free cell"

    def test_table_layout(self, records, small_scenario_session):
        table = robustness_table(records)
        assert set(table) == {small_scenario_session.name}
        methods = table[small_scenario_session.name]
        assert set(methods) == set(METHODS)
        for cells in methods.values():
            assert set(cells) == {(j, l) for j in JITTER for l in LOSS}

    def test_accepts_a_sequence_of_scenarios(self, small_scenario_session):
        records = robustness_sweep(
            [small_scenario_session],
            jitter_values=(0.0,),
            loss_values=(0.0,),
            methods=("gravity",),
            window_length=5,
        )
        assert len(records) == 1
        assert records[0].scenario == small_scenario_session.name


class TestMethodComparisonOnMeasuredData:
    def test_runner_consumes_measured_problems(self, small_scenario_session):
        measured = small_scenario_session.measured(
            jitter_std_seconds=0.0, loss_probability=0.0, seed=1
        )
        consistent_records = method_comparison(
            small_scenario_session, include_vardi=False, fanout_window=5
        )
        measured_records = method_comparison(
            measured, include_vardi=False, fanout_window=5
        )
        consistent = {record.method: record.mre for record in consistent_records}
        for record in measured_records:
            assert record.mre == pytest.approx(
                consistent[record.method], rel=1e-4, abs=1e-6
            ), record.method
