"""Tests for the evaluation metrics (MRE and friends)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import EstimationError
from repro.evaluation import (
    demand_ranking_correlation,
    mean_relative_error,
    relative_errors,
    root_mean_square_error,
    top_demand_threshold,
)
from repro.topology import NodePair
from repro.traffic import TrafficMatrix


PAIRS = tuple(NodePair(f"N{i}", f"N{j}") for i in range(4) for j in range(4) if i != j)


def matrix(values) -> TrafficMatrix:
    return TrafficMatrix(PAIRS, values)


class TestThreshold:
    def test_threshold_covers_requested_fraction(self):
        values = np.array([100, 80, 60, 40, 20, 10, 5, 5, 4, 3, 2, 1], dtype=float)
        truth = matrix(values)
        threshold = top_demand_threshold(truth, 0.9)
        retained = values[values >= threshold]
        assert retained.sum() >= 0.9 * values.sum()

    def test_full_fraction_returns_smallest_value(self):
        truth = matrix(np.arange(1, 13, dtype=float))
        assert top_demand_threshold(truth, 1.0) == pytest.approx(1.0)


class TestRelativeErrors:
    def test_per_pair_errors(self):
        truth = matrix(np.full(12, 10.0))
        estimate = matrix(np.full(12, 12.0))
        errors = relative_errors(estimate, truth)
        assert len(errors) == 12
        assert all(v == pytest.approx(0.2) for v in errors.values())

    def test_zero_true_demands_skipped(self):
        values = np.full(12, 10.0)
        values[0] = 0.0
        truth = matrix(values)
        estimate = matrix(np.full(12, 10.0))
        errors = relative_errors(estimate, truth)
        assert PAIRS[0] not in errors

    def test_threshold_filters_small_demands(self):
        values = np.arange(1, 13, dtype=float)
        truth = matrix(values)
        estimate = matrix(values)
        errors = relative_errors(estimate, truth, threshold=6.0)
        assert len(errors) == 6

    def test_alignment_checked(self):
        truth = matrix(np.ones(12))
        other = TrafficMatrix(PAIRS[:6], np.ones(6))
        with pytest.raises(EstimationError):
            relative_errors(other, truth)


class TestMRE:
    def test_perfect_estimate_has_zero_mre(self):
        truth = matrix(np.arange(1, 13, dtype=float))
        assert mean_relative_error(truth, truth) == pytest.approx(0.0)

    def test_uniform_overestimate(self):
        truth = matrix(np.full(12, 10.0))
        estimate = matrix(np.full(12, 15.0))
        assert mean_relative_error(estimate, truth) == pytest.approx(0.5)

    def test_only_large_demands_counted(self):
        # One dominant demand estimated perfectly; tiny demands estimated terribly.
        values = np.ones(12)
        values[0] = 1000.0
        truth = matrix(values)
        estimate_values = np.full(12, 100.0)
        estimate_values[0] = 1000.0
        estimate = matrix(estimate_values)
        assert mean_relative_error(estimate, truth, traffic_fraction=0.9) == pytest.approx(0.0)

    def test_explicit_threshold_overrides_fraction(self):
        truth = matrix(np.arange(1, 13, dtype=float))
        estimate = matrix(np.arange(1, 13, dtype=float) * 2.0)
        # Threshold 10 keeps only the two largest demands; both are off by 100 %.
        assert mean_relative_error(estimate, truth, threshold=10.0) == pytest.approx(1.0)
        # A threshold above every demand leaves nothing to average over.
        with pytest.raises(EstimationError):
            mean_relative_error(estimate, truth, threshold=100.0)

    def test_mre_matches_manual_computation(self):
        truth_values = np.array([100, 50, 25, 10, 1, 1, 1, 1, 1, 1, 1, 1], dtype=float)
        estimate_values = truth_values.copy()
        estimate_values[0] = 110.0  # +10 %
        estimate_values[1] = 40.0  # -20 %
        truth, estimate = matrix(truth_values), matrix(estimate_values)
        threshold = top_demand_threshold(truth, 0.9)
        manual = np.mean([0.1, 0.2, 0.0])  # demands 100, 50, 25 exceed the threshold
        assert mean_relative_error(estimate, truth, traffic_fraction=0.9) == pytest.approx(
            manual, abs=1e-9
        )


class TestOtherMetrics:
    def test_rmse(self):
        truth = matrix(np.zeros(12))
        estimate = matrix(np.full(12, 2.0))
        assert root_mean_square_error(estimate, truth) == pytest.approx(2.0)

    def test_ranking_correlation_perfect_and_inverted(self):
        truth = matrix(np.arange(1, 13, dtype=float))
        assert demand_ranking_correlation(truth, truth) == pytest.approx(1.0)
        inverted = matrix(np.arange(12, 0, -1, dtype=float))
        assert demand_ranking_correlation(inverted, truth) == pytest.approx(-1.0)

    def test_alignment_checked(self):
        truth = matrix(np.ones(12))
        other = TrafficMatrix(PAIRS[:6], np.ones(6))
        with pytest.raises(EstimationError):
            root_mean_square_error(other, truth)
        with pytest.raises(EstimationError):
            demand_ranking_correlation(other, truth)
