"""Parallel experiment runner: ``n_jobs`` must not change any record.

The acceptance requirement of the batched-bounds/parallel-runner work:
``run_method_specs`` and ``robustness_sweep`` with ``n_jobs > 1`` return
records identical — values and order — to the serial run.  The grid cells
and spec evaluations are deterministic (fixed seeds, fresh estimator
instances), so identity here means equality, not approximation.
"""

from __future__ import annotations

import math

import pytest

from repro.datasets import small_scenario
from repro.errors import EstimationError
from repro.evaluation.experiments import (
    MethodSpec,
    default_method_specs,
    method_comparison,
    robustness_sweep,
    run_method_specs,
    vardi_table,
)


@pytest.fixture(scope="module")
def scenario():
    return small_scenario(seed=21, num_nodes=5, busy_length=12, num_samples=40)


def assert_records_equal(first, second):
    assert len(first) == len(second)
    for a, b in zip(first, second):
        assert type(a) is type(b)
        for field in a.__dataclass_fields__:
            left, right = getattr(a, field), getattr(b, field)
            if isinstance(left, float) and math.isnan(left):
                assert math.isnan(right)
            else:
                assert left == right, (field, left, right)


class TestRunMethodSpecsParallel:
    def test_parallel_records_identical_to_serial(self, scenario):
        specs = default_method_specs(include_vardi=True)
        serial = run_method_specs(scenario, specs, n_jobs=1)
        parallel = run_method_specs(scenario, specs, n_jobs=2)
        assert_records_equal(serial, parallel)

    def test_prior_from_waves_resolve_in_parallel(self, scenario):
        specs = [
            MethodSpec(label="WCB", estimator="worst-case-bounds"),
            MethodSpec(
                label="Bayes-on-WCB",
                estimator="bayesian",
                params={"regularization": 100.0},
                prior_from="WCB",
            ),
            MethodSpec(label="Gravity", estimator="gravity"),
        ]
        serial = run_method_specs(scenario, specs, n_jobs=1)
        parallel = run_method_specs(scenario, specs, n_jobs=3)
        assert_records_equal(serial, parallel)
        assert [record.method for record in parallel] == ["WCB", "Bayes-on-WCB", "Gravity"]

    def test_forward_reference_rejected_before_any_work(self, scenario):
        specs = [
            MethodSpec(
                label="Bayes",
                estimator="bayesian",
                params={"regularization": 100.0},
                prior_from="Later",
            ),
            MethodSpec(label="Later", estimator="gravity"),
        ]
        for n_jobs in (1, 2):
            with pytest.raises(EstimationError):
                run_method_specs(scenario, specs, n_jobs=n_jobs)

    def test_invalid_n_jobs_rejected(self, scenario):
        with pytest.raises(EstimationError):
            run_method_specs(scenario, default_method_specs()[:2], n_jobs=0)

    def test_method_comparison_and_vardi_table_forward_n_jobs(self, scenario):
        serial = method_comparison(scenario, include_vardi=False)
        parallel = method_comparison(scenario, include_vardi=False, n_jobs=2)
        assert_records_equal(serial, parallel)
        assert_records_equal(
            vardi_table(scenario, window_length=8),
            vardi_table(scenario, window_length=8, n_jobs=2),
        )


class TestRobustnessSweepParallel:
    def test_parallel_records_identical_to_serial(self, scenario):
        kwargs = dict(
            jitter_values=(0.0, 2.0),
            loss_values=(0.0, 0.05),
            methods=("gravity", "bayesian", "entropy", "worst-case-bounds"),
            seed=3,
        )
        serial = robustness_sweep(scenario, n_jobs=1, **kwargs)
        parallel = robustness_sweep(scenario, n_jobs=2, **kwargs)
        assert_records_equal(serial, parallel)
        # The grid order is preserved: jitter-major, then loss, then method.
        coords = [(r.jitter_std_seconds, r.loss_probability) for r in parallel]
        assert coords == sorted(coords, key=lambda c: (c[0], c[1]))

    def test_multiple_scenarios_preserve_order(self, scenario):
        other = small_scenario(seed=22, num_nodes=4, busy_length=8, num_samples=24)
        serial = robustness_sweep(
            [scenario, other],
            jitter_values=(0.0,),
            loss_values=(0.0, 0.1),
            methods=("gravity",),
        )
        parallel = robustness_sweep(
            [scenario, other],
            jitter_values=(0.0,),
            loss_values=(0.0, 0.1),
            methods=("gravity",),
            n_jobs=2,
        )
        assert_records_equal(serial, parallel)
        names = [record.scenario for record in parallel]
        assert names == sorted(names, key=names.index)
