"""Tests for the figure data generators and table runners (on a small scenario)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.evaluation.experiments import (
    ExperimentRecord,
    method_comparison,
    summary_table,
    vardi_table,
)
from repro.evaluation.figures import (
    cumulative_demand_distribution,
    direct_measurement_curve,
    fanout_estimation_scatter,
    fanout_mre_vs_window,
    gravity_scatter,
    mean_variance_relation,
    prior_comparison_sweep,
    regularization_sweep,
    regularized_scatter,
    spatial_distribution,
    total_traffic_over_time,
    vardi_synthetic_mre_vs_window,
    worst_case_bound_scatter,
    fanout_stability,
)


@pytest.fixture(scope="module")
def scenario():
    from repro.datasets import small_scenario

    return small_scenario(seed=17, num_nodes=6, busy_length=20, num_samples=80)


class TestDataAnalysisFigures:
    def test_fig1_total_traffic(self, scenario):
        data = total_traffic_over_time(scenario)
        assert data["normalized_total_traffic"].max() == pytest.approx(1.0)
        assert len(data["time_seconds"]) == len(data["normalized_total_traffic"])

    def test_fig2_cumulative_distribution(self, scenario):
        data = cumulative_demand_distribution(scenario)
        assert data["traffic_fraction"][-1] == pytest.approx(1.0)
        assert np.all(np.diff(data["traffic_fraction"]) >= -1e-12)

    def test_fig3_spatial_distribution(self, scenario):
        data = spatial_distribution(scenario)
        size = len(data["node_names"])
        assert data["demand_matrix"].shape == (size, size)
        assert np.trace(data["demand_matrix"]) == 0.0

    def test_fig4_5_fanout_stability(self, scenario):
        data = fanout_stability(scenario, num_sources=3)
        assert data["demands"].shape[0] == 3
        assert data["fanouts"].shape == data["demands"].shape
        # The headline property: fanouts fluctuate less than demands.
        assert data["fanout_cov"].mean() < data["demand_cov"].mean()

    def test_fig6_mean_variance(self, scenario):
        data = mean_variance_relation(scenario)
        assert data["phi"] > 0
        assert 0.5 < data["c"] < 2.5
        assert len(data["demand_means"]) == scenario.network.num_pairs


class TestEstimationFigures:
    def test_fig7_gravity_scatter(self, scenario):
        data = gravity_scatter(scenario)
        assert data["estimated"].shape == data["actual"].shape
        assert data["mre"] > 0

    def test_fig8_9_worst_case_bounds(self, scenario):
        data = worst_case_bound_scatter(scenario)
        assert np.all(data["upper_bounds"] >= data["lower_bounds"] - 1e-9)
        assert np.all(data["lower_bounds"] <= data["actual"] + 1e-6)
        assert np.all(data["actual"] <= data["upper_bounds"] + 1e-6)
        assert np.allclose(data["midpoint"], 0.5 * (data["lower_bounds"] + data["upper_bounds"]))

    def test_fig10_fanout_scatter(self, scenario):
        data = fanout_estimation_scatter(scenario, window_lengths=(1, 3))
        assert set(data) == {1, 3}
        assert data[3]["estimated"].shape == data[3]["actual_average"].shape

    def test_fig11_fanout_mre_curve(self, scenario):
        data = fanout_mre_vs_window(scenario, window_lengths=(1, 3, 10))
        assert len(data["mre"]) == 3
        assert np.all(data["mre"] > 0)

    def test_fig12_vardi_synthetic(self, scenario):
        data = vardi_synthetic_mre_vs_window(scenario, window_sizes=(20, 200), seed=3)
        assert len(data["mre"]) == 2
        # More samples must help when the Poisson assumption holds exactly.
        assert data["mre"][1] < data["mre"][0]

    def test_fig13_regularization_sweep(self, scenario):
        data = regularization_sweep(scenario, regularizations=[1e-4, 1.0, 1e4])
        assert len(data["bayesian_mre"]) == 3
        assert len(data["entropy_mre"]) == 3
        # Large regularisation (trusting the measurements) must beat the prior-only end.
        assert data["entropy_mre"][-1] < data["entropy_mre"][0]

    def test_fig14_scatter(self, scenario):
        data = regularized_scatter(scenario, regularization=1000.0)
        assert data["bayesian"].shape == data["actual"].shape
        assert data["entropy"].shape == data["actual"].shape

    def test_fig15_prior_comparison(self, scenario):
        data = prior_comparison_sweep(scenario, regularizations=[1e-4, 1e3])
        # At small regularisation the WCB prior must beat the gravity prior.
        assert data["wcb_prior_mre"][0] < data["gravity_prior_mre"][0]

    def test_fig16_direct_measurements(self, scenario):
        data = direct_measurement_curve(scenario, max_measurements=2, strategy="largest")
        assert len(data["mre"]) == 3  # baseline + 2 measurements
        assert data["mre"][-1] <= data["mre"][0] + 1e-9
        greedy = direct_measurement_curve(scenario, max_measurements=1, strategy="greedy")
        assert greedy["mre"][1] <= greedy["mre"][0] + 1e-9


class TestTables:
    def test_table1_vardi(self, scenario):
        records = vardi_table(scenario, poisson_weights=(0.01, 1.0), window_length=15)
        assert len(records) == 2
        weights = [r.parameters["poisson_weight"] for r in records]
        assert weights == [0.01, 1.0]
        # Full faith in the Poisson assumption hurts on non-Poisson data.
        assert records[1].mre >= records[0].mre

    def test_table2_method_comparison(self, scenario):
        records = method_comparison(scenario, fanout_window=5, vardi_window=15)
        methods = {r.method for r in records}
        assert {
            "Worst-case bound prior",
            "Simple gravity prior",
            "Entropy w. gravity prior",
            "Bayes w. gravity prior",
            "Bayes w. WCB prior",
            "Fanout",
            "Vardi",
        } <= methods
        by_method = {r.method: r.mre for r in records}
        # The paper's headline ordering: regularised estimation beats the raw priors.
        assert by_method["Entropy w. gravity prior"] < by_method["Simple gravity prior"]
        assert by_method["Bayes w. WCB prior"] <= by_method["Simple gravity prior"]

    def test_summary_table_layout(self, scenario):
        records = [
            ExperimentRecord(scenario="europe", method="Entropy", mre=0.1),
            ExperimentRecord(scenario="america", method="Entropy", mre=0.2),
        ]
        table = summary_table(records)
        assert table == {"Entropy": {"europe": 0.1, "america": 0.2}}
