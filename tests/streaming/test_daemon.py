"""Tests for the streaming estimation daemon."""

from __future__ import annotations

import numpy as np
import pytest

from repro import telemetry
from repro.errors import EstimationError, StreamingError
from repro.estimation.base import EstimationProblem
from repro.estimation.priors import make_prior
from repro.estimation.registry import get_estimator
from repro.resilience.faults import PollLossBurst, fault_plan
from repro.streaming import PollStream, StreamingEstimator


def batch_problem(routing, collector):
    """Batch series problem from a collected archive (the reference path)."""
    loads = collector.measured_link_loads()
    demands = collector.measured_traffic_series().as_array()
    pairs = routing.pairs
    origins = tuple(dict.fromkeys(pair.origin for pair in pairs))
    destinations = tuple(dict.fromkeys(pair.destination for pair in pairs))
    origin_index = {name: idx for idx, name in enumerate(origins)}
    destination_index = {name: idx for idx, name in enumerate(destinations)}
    origin_cols = np.array([origin_index[pair.origin] for pair in pairs])
    destination_cols = np.array([destination_index[pair.destination] for pair in pairs])
    num_snapshots = loads.shape[0]
    origin_totals = np.zeros((num_snapshots, len(origins)))
    destination_totals = np.zeros((num_snapshots, len(destinations)))
    for snapshot in range(num_snapshots):
        np.add.at(origin_totals[snapshot], origin_cols, demands[snapshot])
        np.add.at(destination_totals[snapshot], destination_cols, demands[snapshot])
    return EstimationProblem(
        routing=routing,
        link_load_series=loads,
        origin_totals_series=origin_totals,
        origin_names=origins,
        destination_totals_series=destination_totals,
        destination_names=destinations,
    )


class TestBatchAgreement:
    @pytest.mark.parametrize("method", ["tomogravity", "kruithof", "entropy"])
    def test_streaming_matches_estimate_series_on_clean_day(
        self, method, stream_scenario, collector_factory
    ):
        series = stream_scenario.day_series
        routing = stream_scenario.routing
        stream = PollStream.from_collector(collector_factory(), series)
        daemon = StreamingEstimator.from_collector(
            collector_factory(), method=method, watchdog_every=0
        )
        records = list(daemon.run(stream))
        assert len(records) == len(series)
        assert not any(record.stale for record in records)
        assert all(record.method == method for record in records)

        reference_collector = collector_factory()
        reference_collector.collect(series)
        problem = batch_problem(routing, reference_collector)
        reference = get_estimator(method).estimate_series(problem)
        streamed = np.stack([record.estimate for record in records])
        np.testing.assert_allclose(
            streamed, np.maximum(reference.estimates, 0.0), rtol=1e-3, atol=1e-2
        )

    def test_incremental_update_equals_warm_started_estimate(
        self, stream_scenario, collector_factory
    ):
        collector = collector_factory()
        collector.collect(stream_scenario.day_series)
        problem = batch_problem(stream_scenario.routing, collector).at_snapshot(1)
        previous = make_prior(problem, "gravity") * 1.1

        updated = get_estimator("entropy").update(problem, previous=previous)
        manual = get_estimator("entropy")
        manual.set_warm_start(previous)
        expected = manual.estimate(problem)
        np.testing.assert_array_equal(updated.vector, expected.vector)

    def test_update_without_previous_is_plain_estimate(
        self, stream_scenario, collector_factory
    ):
        collector = collector_factory()
        collector.collect(stream_scenario.day_series)
        problem = batch_problem(stream_scenario.routing, collector).at_snapshot(0)
        updated = get_estimator("tomogravity").update(problem)
        expected = get_estimator("tomogravity").estimate(problem)
        np.testing.assert_array_equal(updated.vector, expected.vector)


class TestStaleness:
    def test_total_outage_holds_estimate_with_stale_flags(
        self, stream_scenario, collector_factory
    ):
        plan = fault_plan(PollLossBurst(start_round=4, num_rounds=3, fraction=1.0), seed=0)
        stream = PollStream.from_collector(
            collector_factory(fault_plan=plan), stream_scenario.day_series
        )
        daemon = StreamingEstimator.from_collector(
            collector_factory(fault_plan=plan), method="tomogravity", watchdog_every=0
        )
        records = list(daemon.run(stream))
        stale = [record for record in records if record.stale]
        # Rounds 4-6 lost: intervals 3-6 have no fresh closing poll for any
        # link until the catch-up poll at round 7.
        assert stale, "outage produced no stale records"
        streaks = [record.stale_intervals for record in stale]
        assert streaks == list(range(1, len(stale) + 1))
        held_from = records[stale[0].sequence - 1]
        for record in stale:
            assert record.method == "held"
            assert record.valid_fraction == 0.0
            np.testing.assert_array_equal(record.estimate, held_from.estimate)
        # Recovery: the poll after the outage produces a real update again.
        after = records[stale[-1].sequence + 1]
        assert not after.stale and after.method == "tomogravity"

    def test_partial_loss_still_updates(self, stream_scenario, collector_factory):
        plan = fault_plan(PollLossBurst(start_round=4, num_rounds=2, fraction=0.4), seed=2)
        stream = PollStream.from_collector(
            collector_factory(fault_plan=plan), stream_scenario.day_series
        )
        daemon = StreamingEstimator.from_collector(
            collector_factory(fault_plan=plan),
            method="tomogravity",
            watchdog_every=0,
            min_valid_fraction=0.25,
        )
        records = list(daemon.run(stream))
        assert not any(record.stale for record in records)
        degraded_rounds = [r for r in records if r.valid_fraction < 1.0]
        assert degraded_rounds, "loss burst left no partially-valid rounds"

    def test_cold_start_during_outage_emits_zero_estimate(
        self, stream_scenario, collector_factory
    ):
        plan = fault_plan(PollLossBurst(start_round=0, num_rounds=3, fraction=1.0), seed=0)
        stream = PollStream.from_collector(
            collector_factory(fault_plan=plan), stream_scenario.day_series
        )
        daemon = StreamingEstimator.from_collector(
            collector_factory(fault_plan=plan), method="tomogravity", watchdog_every=0
        )
        records = list(daemon.run(stream))
        assert records[0].stale
        np.testing.assert_array_equal(records[0].estimate, 0.0)


class TestWatchdog:
    def test_periodic_checks_at_configured_cadence(
        self, stream_scenario, collector_factory
    ):
        stream = PollStream.from_collector(collector_factory(), stream_scenario.day_series)
        daemon = StreamingEstimator.from_collector(
            collector_factory(), method="tomogravity", watchdog_every=4
        )
        records = list(daemon.run(stream))
        checked = [record.sequence for record in records if record.watchdog_checked]
        assert checked == [3, 7, 11]
        for record in records:
            if record.watchdog_checked:
                assert record.watchdog_drift is not None
                assert record.watchdog_drift < 0.01  # clean day: no divergence
                assert not record.watchdog_resolved

    def test_trip_adopts_full_resolve(self, stream_scenario, collector_factory):
        stream = PollStream.from_collector(collector_factory(), stream_scenario.day_series)
        daemon = StreamingEstimator.from_collector(
            collector_factory(),
            method="tomogravity",
            watchdog_every=3,
            watchdog_threshold=-1.0,  # any drift (even zero) trips
        )
        records = list(daemon.run(stream))
        resolved = [record for record in records if record.watchdog_resolved]
        assert resolved
        assert daemon.watchdog_resolves == len(resolved)
        for record in resolved:
            assert record.method == "supervised"

    def test_degraded_update_falls_back_to_supervised_chain(
        self, stream_scenario, collector_factory, monkeypatch
    ):
        stream = PollStream.from_collector(collector_factory(), stream_scenario.day_series)
        daemon = StreamingEstimator.from_collector(
            collector_factory(), method="tomogravity", watchdog_every=0
        )

        original = daemon._estimator.update
        failures = {"left": 2}

        def flaky_update(problem, previous=None):
            if failures["left"] > 0:
                failures["left"] -= 1
                raise EstimationError("injected incremental failure")
            return original(problem, previous=previous)

        monkeypatch.setattr(daemon._estimator, "update", flaky_update)
        with pytest.warns(RuntimeWarning, match="incremental update failed"):
            records = list(daemon.run(stream))
        degraded = [record for record in records if record.degraded]
        assert [record.sequence for record in degraded] == [0, 1]
        assert daemon.degraded_updates == 2
        for record in degraded:
            assert record.method == "supervised"
            assert not record.stale


class TestEpochChurn:
    def test_reroute_bumps_epoch_and_invalidates_exactly_affected_pairs(
        self, stream_scenario, collector_factory
    ):
        routing = stream_scenario.routing
        stream = PollStream.from_collector(collector_factory(), stream_scenario.day_series)
        daemon = StreamingEstimator.from_collector(
            collector_factory(), method="tomogravity", watchdog_every=0
        )

        captured = {}
        original = daemon._estimator.update

        def capture_update(problem, previous=None):
            if previous is not None and "warm" not in captured and daemon.epoch == 1:
                captured["warm"] = previous.copy()
                captured["problem"] = problem
            return original(problem, previous=previous)

        daemon._estimator.update = capture_update

        failed_link = routing.link_names[0]
        records = []
        previous_estimate = None
        result = None
        for record in daemon.run(stream):
            records.append(record)
            if record.sequence == 2:
                previous_estimate = record.estimate.copy()
                result = daemon.apply_reroute(failed_links=[failed_link])

        assert result is not None and result.rerouted
        affected = np.zeros(routing.num_pairs, dtype=bool)
        position = {pair: idx for idx, pair in enumerate(routing.pairs)}
        for pair in result.rerouted:
            affected[position[pair]] = True

        # Epoch tagging: records before the reroute are epoch 0, after 1.
        assert [record.epoch for record in records] == [0] * 3 + [1] * (len(records) - 3)
        # The reroute forces a watchdog pass on the next update.
        assert records[3].watchdog_checked

        # Exactly the affected pairs were re-seeded from the prior; the
        # surviving pairs kept the previous estimate as their warm start.
        warm = captured["warm"]
        replacement = make_prior(captured["problem"], "gravity")
        np.testing.assert_array_equal(warm[~affected], previous_estimate[~affected])
        np.testing.assert_array_equal(warm[affected], replacement[affected])
        assert daemon.invalidated_total == int(affected.sum())

    def test_reroute_without_network_rejected(self, stream_scenario, collector_factory):
        from repro.routing.routing_matrix import RoutingMatrix

        routing = stream_scenario.routing
        bare = RoutingMatrix(routing.native, routing.link_names, routing.pairs)
        daemon = StreamingEstimator(
            routing=bare,
            link_names=[f"link:{name}" for name in routing.link_names],
        )
        with pytest.raises(StreamingError):
            daemon.apply_reroute(failed_links=[routing.link_names[0]])


class TestRingBuffer:
    def test_window_is_bounded_and_ordered(self, stream_scenario, collector_factory):
        stream = PollStream.from_collector(collector_factory(), stream_scenario.day_series)
        daemon = StreamingEstimator.from_collector(
            collector_factory(), method="tomogravity", watchdog_every=0, ring_rounds=5
        )
        list(daemon.run(stream))
        times, rates, valid = daemon.window()
        assert times.shape == (5,)
        assert rates.shape == (5, stream_scenario.routing.num_links)
        assert valid.shape == rates.shape
        assert np.all(np.diff(times) > 0)
        # The window ends at the last poll round's scheduled time.
        assert times[-1] == stream.scheduled_times[-1]


class TestValidationAndTelemetry:
    def test_constructor_validation(self, stream_scenario):
        routing = stream_scenario.routing
        names = [f"link:{name}" for name in routing.link_names]
        with pytest.raises(StreamingError):
            StreamingEstimator(routing=routing, link_names=names[:-1])
        with pytest.raises(StreamingError):
            StreamingEstimator(routing=routing, link_names=names, lsp_names=["x"])
        with pytest.raises(StreamingError):
            StreamingEstimator(routing=routing, link_names=names, ring_rounds=0)
        with pytest.raises(StreamingError):
            StreamingEstimator(routing=routing, link_names=names, min_valid_fraction=1.5)
        with pytest.raises(StreamingError):
            StreamingEstimator(routing=routing, link_names=names, watchdog_every=-1)

    def test_out_of_order_rounds_rejected(self, stream_scenario, collector_factory):
        stream = PollStream.from_collector(collector_factory(), stream_scenario.day_series)
        daemon = StreamingEstimator.from_collector(collector_factory())
        daemon.process_round(stream.round(0), stream)
        with pytest.raises(StreamingError):
            daemon.process_round(stream.round(2), stream)

    def test_stream_missing_objects_rejected(self, stream_scenario, collector_factory):
        collector = collector_factory()
        matrices = collector.poll_matrices(stream_scenario.day_series)
        stream = PollStream(matrices[:1])  # half the objects
        daemon = StreamingEstimator.from_collector(collector_factory())
        with pytest.raises(StreamingError):
            daemon.process_round(stream.round(0), stream)

    def test_stream_stage_telemetry(self, telemetry_on, stream_scenario, collector_factory):
        stream = PollStream.from_collector(collector_factory(), stream_scenario.day_series)
        daemon = StreamingEstimator.from_collector(
            collector_factory(), method="tomogravity", watchdog_every=4
        )
        list(daemon.run(stream))
        snapshot = telemetry.metrics_snapshot()
        counters = snapshot["counters"]
        gauges = snapshot["gauges"]
        assert counters["stream.polls"] == len(stream_scenario.day_series)
        assert counters["stream.watchdog_checks"] == 3
        assert gauges["stream.valid_fraction"] == 1.0
        assert gauges["stream.ring_rounds"] > 0
