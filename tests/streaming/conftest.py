"""Fixtures for the streaming-estimation tests.

The streaming suite drives one deterministic small scenario through
paired collectors: every test that needs both a poll stream and a batch
reference builds two collectors with identical seeds, so the streamed
and archived measurements are the same random draw.

Telemetry state is process-global, so the same autouse guard as the
telemetry package keeps enabled flags from leaking between tests.
"""

from __future__ import annotations

import pytest

from repro import telemetry
from repro.datasets import small_scenario
from repro.measurement.collector import DistributedCollector


@pytest.fixture(autouse=True)
def _telemetry_clean():
    telemetry.disable()
    telemetry.reset_telemetry()
    yield
    telemetry.disable()
    telemetry.reset_telemetry()


@pytest.fixture
def telemetry_on(_telemetry_clean):
    """Telemetry enabled with empty collectors, torn down afterwards."""
    telemetry.enable()
    yield


@pytest.fixture(scope="module")
def stream_scenario():
    """Deterministic 5-node scenario with a 14-sample day."""
    return small_scenario(seed=3, num_nodes=5, num_samples=14)


@pytest.fixture
def collector_factory(stream_scenario):
    """Build identically-seeded collectors over the scenario's routing.

    Calling the factory twice with the same arguments yields collectors
    whose poll matrices are bit-identical, which is how tests compare the
    streaming path against the batch archive path.
    """

    def make(fault_plan=None, **kwargs):
        options = dict(
            num_pollers=2, jitter_std_seconds=0.0, loss_probability=0.0, seed=9
        )
        options.update(kwargs)
        return DistributedCollector(
            stream_scenario.routing, fault_plan=fault_plan, **options
        )

    return make
