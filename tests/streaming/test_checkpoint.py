"""Checkpoint/restore and crash-recovery tests for the streaming daemon."""

from __future__ import annotations

import json
import os
import subprocess
import sys
import warnings

import numpy as np
import pytest

from repro.errors import StreamingError
from repro.resilience.faults import (
    ClockSkew,
    CollectorOutage,
    Counter32Wrap,
    CounterReset,
    FaultPlan,
    PollLossBurst,
    StuckCounter,
    fault_plan,
)
from repro.streaming import (
    CHECKPOINT_VERSION,
    PollStream,
    StreamingEstimator,
    load_checkpoint,
    routing_fingerprint,
)

FAULT_PLANS = {
    "clean": None,
    "loss-burst": fault_plan(
        PollLossBurst(start_round=3, num_rounds=2, fraction=0.6), seed=1
    ),
    "collector-outage": fault_plan(
        CollectorOutage(poller_index=0, start_round=5, num_rounds=3), seed=2
    ),
    "counter-reset": fault_plan(CounterReset(round_index=7), seed=3),
    "counter32-wrap": fault_plan(Counter32Wrap(), seed=4),
    "clock-skew": fault_plan(ClockSkew(offset_seconds=15.0, start_round=4), seed=5),
    "stuck-counter": fault_plan(StuckCounter(start_round=6, num_rounds=2), seed=6),
    "composed": fault_plan(
        PollLossBurst(start_round=2, num_rounds=2, fraction=0.5),
        Counter32Wrap(),
        ClockSkew(offset_seconds=8.0, start_round=6),
        CounterReset(round_index=9),
        seed=7,
    ),
}


def make_daemon(collector_factory, plan):
    return StreamingEstimator.from_collector(
        collector_factory(fault_plan=plan),
        method="tomogravity",
        watchdog_every=4,
        min_valid_fraction=0.5,
    )


def run_stream(daemon, stream, kill_after=None, checkpoint_path=None):
    lines = []
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        for record in daemon.run(stream):
            lines.append(record.payload_line())
            if kill_after is not None and len(lines) == kill_after:
                daemon.checkpoint(checkpoint_path)
                break
    return lines


class TestResumeIdentity:
    @pytest.mark.parametrize("plan_name", sorted(FAULT_PLANS))
    def test_kill_and_resume_reproduces_records_bit_identically(
        self, plan_name, stream_scenario, collector_factory, tmp_path
    ):
        plan = FAULT_PLANS[plan_name]
        series = stream_scenario.day_series
        loss = 0.05 if plan is not None else 0.0

        def stream_factory():
            return PollStream.from_collector(
                collector_factory(fault_plan=plan, loss_probability=loss,
                                  jitter_std_seconds=1.0),
                series,
            )

        daemon_kwargs = dict(fault_plan=plan, loss_probability=loss,
                             jitter_std_seconds=1.0)
        full_daemon = StreamingEstimator.from_collector(
            collector_factory(**daemon_kwargs), method="tomogravity",
            watchdog_every=4, min_valid_fraction=0.5,
        )
        full = run_stream(full_daemon, stream_factory())
        assert len(full) == len(series)

        path = tmp_path / f"{plan_name}.ckpt"
        killed = StreamingEstimator.from_collector(
            collector_factory(**daemon_kwargs), method="tomogravity",
            watchdog_every=4, min_valid_fraction=0.5,
        )
        head = run_stream(killed, stream_factory(), kill_after=6, checkpoint_path=str(path))
        resumed = StreamingEstimator.restore(str(path), stream_scenario.routing)
        tail = run_stream(resumed, stream_factory())
        assert head + tail == full


class TestCheckpointRoundtrip:
    def test_state_survives_roundtrip_exactly(
        self, stream_scenario, collector_factory, tmp_path
    ):
        stream = PollStream.from_collector(collector_factory(), stream_scenario.day_series)
        daemon = make_daemon(collector_factory, None)
        iterator = daemon.run(stream)
        for _ in range(7):
            next(iterator)

        path = tmp_path / "daemon.ckpt"
        daemon.checkpoint(str(path))
        restored = StreamingEstimator.restore(str(path), stream_scenario.routing)

        assert restored.rounds_seen == daemon.rounds_seen
        assert restored.sequence == daemon.sequence
        assert restored.epoch == daemon.epoch
        assert restored.since_watchdog == daemon.since_watchdog
        assert restored.stale_polls == daemon.stale_polls
        np.testing.assert_array_equal(restored.estimate, daemon.estimate)
        np.testing.assert_array_equal(
            restored.tracker.last_counter, daemon.tracker.last_counter
        )
        np.testing.assert_array_equal(
            restored.tracker.last_response, daemon.tracker.last_response
        )
        np.testing.assert_array_equal(restored.tracker.rate, daemon.tracker.rate)
        for restored_part, original_part in zip(restored.window(), daemon.window()):
            np.testing.assert_array_equal(restored_part, original_part)

    def test_checkpoint_before_first_estimate(self, stream_scenario, collector_factory, tmp_path):
        daemon = make_daemon(collector_factory, None)
        path = tmp_path / "cold.ckpt"
        daemon.checkpoint(str(path))
        restored = StreamingEstimator.restore(str(path), stream_scenario.routing)
        assert restored.estimate is None
        assert restored.rounds_seen == 0

    def test_checkpoint_after_reroute_restores_epoch_routing(
        self, stream_scenario, collector_factory, tmp_path
    ):
        stream = PollStream.from_collector(collector_factory(), stream_scenario.day_series)
        daemon = make_daemon(collector_factory, None)
        iterator = daemon.run(stream)
        for _ in range(3):
            next(iterator)
        failed = stream_scenario.routing.link_names[0]
        daemon.apply_reroute(failed_links=[failed])
        next(iterator)

        path = tmp_path / "rerouted.ckpt"
        daemon.checkpoint(str(path))
        restored = StreamingEstimator.restore(str(path), stream_scenario.routing)
        assert restored.epoch == 1
        assert restored.failed_links == {failed}
        assert routing_fingerprint(restored.routing) == routing_fingerprint(daemon.routing)
        assert routing_fingerprint(restored.routing) != routing_fingerprint(
            stream_scenario.routing
        )


class TestCheckpointValidation:
    def _checkpoint(self, stream_scenario, collector_factory, path):
        daemon = make_daemon(collector_factory, None)
        stream = PollStream.from_collector(collector_factory(), stream_scenario.day_series)
        iterator = daemon.run(stream)
        next(iterator)
        daemon.checkpoint(str(path))
        return daemon

    def test_version_mismatch_rejected(self, stream_scenario, collector_factory, tmp_path):
        path = tmp_path / "versioned.ckpt"
        self._checkpoint(stream_scenario, collector_factory, path)
        meta, arrays = load_checkpoint(str(path))
        assert meta["version"] == CHECKPOINT_VERSION
        meta["version"] = CHECKPOINT_VERSION + 1
        with open(path, "wb") as handle:
            np.savez(handle, meta=np.array(json.dumps(meta)), **arrays)
        with pytest.raises(StreamingError):
            StreamingEstimator.restore(str(path), stream_scenario.routing)

    def test_fingerprint_mismatch_rejected(
        self, stream_scenario, collector_factory, tmp_path
    ):
        path = tmp_path / "fingerprint.ckpt"
        self._checkpoint(stream_scenario, collector_factory, path)
        from repro.routing.incremental import IncrementalRerouter

        other, _ = IncrementalRerouter(stream_scenario.network).reroute_matrix(
            failed_links=[stream_scenario.routing.link_names[0]]
        )
        with pytest.raises(StreamingError):
            StreamingEstimator.restore(str(path), other)

    def test_garbage_file_rejected(self, stream_scenario, tmp_path):
        path = tmp_path / "garbage.ckpt"
        path.write_bytes(b"not a checkpoint")
        with pytest.raises(StreamingError):
            load_checkpoint(str(path))

    def test_fingerprint_is_backend_independent(self, stream_scenario):
        routing = stream_scenario.routing
        sparse = routing.with_backend("sparse")
        assert routing_fingerprint(routing) == routing_fingerprint(sparse)


class TestKillDashNine:
    def test_sigkill_drill_reproduces_uninterrupted_records(self, tmp_path):
        """End-to-end: SIGKILL a real daemon process, resume, compare logs."""
        repo = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
        script = os.path.join(repo, "examples", "streaming_daemon.py")
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.join(repo, "src")
        env["CHAOS_SEED"] = "0"
        result = subprocess.run(
            [sys.executable, script, "--drill", "--samples", "12", "--kill-after", "4"],
            env=env,
            cwd=str(tmp_path),
            capture_output=True,
            text=True,
            timeout=300,
        )
        assert result.returncode == 0, result.stdout + result.stderr
        assert "bit-identical" in result.stdout
