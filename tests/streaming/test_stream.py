"""Tests for the poll-round stream and the causal rate tracker."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import StreamingError
from repro.measurement.snmp import PollMatrix, SNMPPoller, rates_from_poll_matrix
from repro.streaming import CounterTracker, PollStream


def _drive_tracker(polls: PollMatrix) -> tuple[np.ndarray, np.ndarray]:
    """Feed every round of one poll matrix through a fresh tracker.

    Returns the stacked per-interval rates and freshness masks (the first
    round only primes the tracker, so there are ``rounds - 1`` rows).
    """
    tracker = CounterTracker(polls.num_objects)
    bits = np.full(polls.num_objects, polls.counter_bits, dtype=np.uint64)
    rates, fresh = [], []
    for index in range(polls.num_rounds):
        row_rates, row_fresh = tracker.observe(
            polls.response_times[index], polls.counters[index], polls.lost[index], bits
        )
        if index > 0:
            rates.append(row_rates)
            fresh.append(row_fresh)
    return np.stack(rates), np.stack(fresh)


def _poll_matrix(counters, lost=None, times=None, bits=64, names=("o",)):
    counters = np.asarray(counters, dtype=np.uint64)
    rounds = counters.shape[0]
    if counters.ndim == 1:
        counters = counters[:, None]
    if times is None:
        times = 300.0 * np.arange(rounds, dtype=float)
    times = np.asarray(times, dtype=float)
    response = times[:, None] * np.ones((1, counters.shape[1]))
    lost_matrix = np.zeros(counters.shape, dtype=bool)
    if lost is not None:
        lost_matrix[...] = np.asarray(lost, dtype=bool).reshape(counters.shape)
    if len(names) != counters.shape[1]:
        names = tuple(f"o{i}" for i in range(counters.shape[1]))
    return PollMatrix(
        object_names=tuple(names),
        scheduled_times=times,
        response_times=response,
        counters=counters,
        lost=lost_matrix,
        counter_bits=bits,
    )


class TestCounterTrackerAgainstBatch:
    def test_clean_schedule_matches_batch_rates_exactly(self):
        poller = SNMPPoller(
            [f"obj{i}" for i in range(7)],
            jitter_std_seconds=1.5,
            loss_probability=0.0,
            seed=11,
        )
        rng = np.random.default_rng(0)
        matrix = poller.run_schedule_matrix(rng.uniform(10.0, 500.0, size=(12, 7)))
        batch_rates, diagnostics = rates_from_poll_matrix(matrix)

        stream_rates, fresh = _drive_tracker(matrix)
        assert fresh.all()
        np.testing.assert_array_equal(stream_rates, batch_rates)
        assert diagnostics.validity is not None and diagnostics.validity.all()

    def test_lossy_schedule_matches_batch_where_valid(self):
        poller = SNMPPoller(
            [f"obj{i}" for i in range(5)],
            jitter_std_seconds=1.0,
            loss_probability=0.2,
            seed=7,
        )
        rng = np.random.default_rng(1)
        matrix = poller.run_schedule_matrix(rng.uniform(10.0, 500.0, size=(20, 5)))
        batch_rates, diagnostics = rates_from_poll_matrix(matrix)

        stream_rates, fresh = _drive_tracker(matrix)
        # Causal freshness implies batch validity, but not vice versa: the
        # first good poll after a gap closes a *multi-interval* delta that
        # the batch path splits into interpolated samples.
        valid = diagnostics.validity
        assert valid is not None
        np.testing.assert_allclose(
            stream_rates[valid & fresh], batch_rates[valid & fresh]
        )

    def test_gap_average_after_loss_burst(self):
        # Rates 100 then 300 Mbps over 300 s intervals with the middle poll
        # lost: the catch-up sample averages the two intervals.
        bytes_per_interval = np.array([0.0, 100.0, 300.0]) * 1e6 / 8.0 * 300.0
        counters = np.cumsum(bytes_per_interval).astype(np.uint64)
        matrix = _poll_matrix(counters, lost=[[False], [True], [False]])
        tracker = CounterTracker(1)
        bits = np.array([64], dtype=np.uint64)
        for index in range(3):
            rates, fresh = tracker.observe(
                matrix.response_times[index],
                matrix.counters[index],
                matrix.lost[index],
                bits,
            )
        assert fresh[0]
        assert rates[0] == pytest.approx(200.0)

    def test_held_rate_and_staleness_during_loss(self):
        bytes_100 = int(100.0 * 1e6 / 8.0 * 300.0)
        counters = np.array([0, bytes_100, 2 * bytes_100, 3 * bytes_100], dtype=np.uint64)
        matrix = _poll_matrix(counters, lost=[[False], [False], [True], [True]])
        tracker = CounterTracker(1)
        bits = np.array([64], dtype=np.uint64)
        observed = []
        for index in range(4):
            observed.append(
                tracker.observe(
                    matrix.response_times[index],
                    matrix.counters[index],
                    matrix.lost[index],
                    bits,
                )
            )
        # Interval 1 derived normally; intervals 2 and 3 hold it.
        assert observed[1][0][0] == pytest.approx(100.0)
        assert observed[2][0][0] == pytest.approx(100.0) and not observed[2][1][0]
        assert observed[3][0][0] == pytest.approx(100.0) and not observed[3][1][0]
        assert tracker.stale_rounds[0] == 2
        assert tracker.lost_samples == 2


class TestCounterTrackerClassification:
    def test_counter32_wrap_recovered(self):
        # 50 Mbps for 300 s = 1.875e9 bytes per interval: the third poll
        # wraps the 32-bit counter with a delta below half the space, so
        # the wrap is recoverable (beyond half it would read as a reset).
        per_interval = int(50.0 * 1e6 / 8.0 * 300.0)
        raw = np.cumsum([0, per_interval, per_interval, per_interval]).astype(np.uint64)
        counters = raw % np.uint64(2**32)
        assert counters[3] < counters[2]  # the wrap actually happened
        matrix = _poll_matrix(counters, bits=32)
        stream_rates, fresh = _drive_tracker(matrix)
        assert fresh.all()
        np.testing.assert_allclose(stream_rates[:, 0], 50.0)
        batch_rates, _ = rates_from_poll_matrix(matrix)
        np.testing.assert_array_equal(stream_rates, batch_rates)

    def test_reset_invalidates_one_interval_then_recovers(self):
        per_interval = int(100.0 * 1e6 / 8.0 * 300.0)
        counters = np.array(
            [10 * per_interval, 11 * per_interval, 0, per_interval], dtype=np.uint64
        )
        matrix = _poll_matrix(counters)
        stream_rates, fresh = _drive_tracker(matrix)
        assert fresh[0, 0] and not fresh[1, 0] and fresh[2, 0]
        # The reset interval holds the last rate; the next one re-syncs.
        np.testing.assert_allclose(stream_rates[:, 0], [100.0, 100.0, 100.0])
        tracker_matches, _ = rates_from_poll_matrix(matrix)
        np.testing.assert_allclose(tracker_matches[:, 0], [100.0, 100.0, 100.0])

    def test_degenerate_elapsed_holds(self):
        per_interval = int(100.0 * 1e6 / 8.0 * 300.0)
        counters = np.array([0, per_interval, 2 * per_interval], dtype=np.uint64)
        matrix = _poll_matrix(counters, times=[0.0, 300.0, 300.0])
        stream_rates, fresh = _drive_tracker(matrix)
        assert fresh[0, 0] and not fresh[1, 0]
        assert stream_rates[1, 0] == pytest.approx(100.0)

    def test_shape_validation(self):
        tracker = CounterTracker(3)
        with pytest.raises(StreamingError):
            tracker.observe(
                np.zeros(2), np.zeros(3, dtype=np.uint64), np.zeros(3, dtype=bool),
                np.full(3, 64, dtype=np.uint64),
            )


class TestPollStream:
    def test_merges_collector_matrices(self, stream_scenario, collector_factory):
        collector = collector_factory()
        stream = PollStream.from_collector(collector, stream_scenario.day_series)
        routing = stream_scenario.routing
        assert stream.num_objects == routing.num_pairs + routing.num_links
        assert stream.num_rounds == len(stream_scenario.day_series) + 1
        assert set(stream.object_names) == set(
            collector.lsp_object_names + collector.link_object_names
        )
        first = stream.round(0)
        assert first.counters.shape == (stream.num_objects,)
        assert first.scheduled_time == 0.0

    def test_mixed_counter_bits_tracked_per_object(self):
        a = _poll_matrix(np.array([0, 10], dtype=np.uint64), names=("a",), bits=64)
        b = _poll_matrix(np.array([0, 10], dtype=np.uint64), names=("b",), bits=32)
        stream = PollStream([a, b])
        np.testing.assert_array_equal(stream.object_bits, [64, 32])

    def test_mismatched_schedules_rejected(self):
        a = _poll_matrix(np.array([0, 10], dtype=np.uint64), names=("a",))
        b = _poll_matrix(
            np.array([0, 10], dtype=np.uint64), names=("b",), times=[0.0, 600.0]
        )
        with pytest.raises(StreamingError):
            PollStream([a, b])

    def test_duplicate_names_rejected(self):
        a = _poll_matrix(np.array([0, 10], dtype=np.uint64), names=("a",))
        with pytest.raises(StreamingError):
            PollStream([a, a])

    def test_round_bounds_checked(self):
        a = _poll_matrix(np.array([0, 10], dtype=np.uint64), names=("a",))
        stream = PollStream([a])
        with pytest.raises(StreamingError):
            stream.round(2)

    def test_empty_stream_rejected(self):
        with pytest.raises(StreamingError):
            PollStream([])
