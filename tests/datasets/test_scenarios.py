"""Tests for the scenario containers and the reference data-set builders."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import Scenario, america_scenario, europe_scenario, small_scenario
from repro.errors import TrafficError


class TestSmallScenario:
    def test_structure(self, small_scenario_session):
        description = small_scenario_session.describe()
        assert description["num_pops"] == 6
        assert description["num_pairs"] == 30
        assert description["busy_total_traffic"] > 0

    def test_busy_window_is_busiest(self, small_scenario_session):
        busy = small_scenario_session.busy_series()
        assert len(busy) == small_scenario_session.busy_length
        busy_total = busy.total_traffic_series().sum()
        day = small_scenario_session.day_series
        # No other window of the same length carries more traffic.
        totals = day.total_traffic_series()
        window = small_scenario_session.busy_length
        best = max(
            totals[start : start + window].sum() for start in range(len(day) - window + 1)
        )
        assert busy_total == pytest.approx(best)

    def test_snapshot_problem_is_consistent(self, small_scenario_session, small_truth):
        problem = small_scenario_session.snapshot_problem(small_truth)
        assert np.allclose(
            problem.routing.link_loads(small_truth.vector), problem.link_loads
        )
        assert problem.origin_totals == small_truth.origin_totals()
        assert problem.destination_totals == small_truth.destination_totals()

    def test_series_problem_shapes(self, small_scenario_session):
        problem = small_scenario_session.series_problem(window_length=5)
        assert problem.link_load_series.shape == (5, small_scenario_session.routing.num_links)
        assert problem.origin_totals_series.shape[0] == 5
        assert len(problem.origin_names) == len(set(p.origin for p in problem.pairs))

    def test_total_traffic_profile_normalised(self, small_scenario_session):
        _, normalized = small_scenario_session.total_traffic_profile()
        assert normalized.max() == pytest.approx(1.0)

    def test_deterministic_for_seed(self):
        first = small_scenario(seed=3, num_nodes=5, num_samples=12, busy_length=6)
        second = small_scenario(seed=3, num_nodes=5, num_samples=12, busy_length=6)
        assert np.allclose(first.day_series.as_array(), second.day_series.as_array())

    def test_invalid_busy_length_rejected(self, small_scenario_session):
        with pytest.raises(TrafficError):
            Scenario(
                name="bad",
                network=small_scenario_session.network,
                routing=small_scenario_session.routing,
                day_series=small_scenario_session.day_series,
                busy_length=1,
            )
        with pytest.raises(TrafficError):
            Scenario(
                name="bad",
                network=small_scenario_session.network,
                routing=small_scenario_session.routing,
                day_series=small_scenario_session.day_series,
                busy_length=10_000,
            )


@pytest.mark.slow
class TestReferenceScenarios:
    def test_europe_matches_paper_dimensions(self):
        scenario = europe_scenario()
        description = scenario.describe()
        assert description["num_pops"] == 12
        assert description["num_links"] == 72
        assert description["num_pairs"] == 132
        assert len(scenario.day_series) == 288

    def test_america_matches_paper_dimensions(self):
        scenario = america_scenario()
        description = scenario.describe()
        assert description["num_pops"] == 25
        assert description["num_links"] == 284
        assert description["num_pairs"] == 600

    def test_europe_demand_concentration(self):
        scenario = europe_scenario()
        ranks, cumulative = scenario.busy_mean_matrix().cumulative_distribution()
        share_at_20_percent = np.interp(0.2, ranks, cumulative)
        assert 0.7 < share_at_20_percent < 0.9

    def test_underdetermined_estimation_problem(self):
        scenario = europe_scenario()
        assert scenario.routing.is_underdetermined()
