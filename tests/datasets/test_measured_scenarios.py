"""Tests for the measured-data scenario mode (SNMP pipeline -> estimation).

The headline guarantee: with zero jitter and zero loss, the measured
pipeline reproduces the consistent pipeline — same link loads, same edge
totals, same per-method MREs (up to counter byte quantisation) — so noisy
runs differ from consistent runs *only* through the noise knobs.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import MeasuredScenario, Scenario
from repro.errors import TrafficError
from repro.estimation.registry import available_estimators


@pytest.fixture(scope="module")
def noise_free(small_scenario_session) -> MeasuredScenario:
    return small_scenario_session.measured(
        jitter_std_seconds=0.0, loss_probability=0.0, seed=5
    )


class TestMeasuredScenarioConstruction:
    def test_factory_preserves_scenario_identity(self, small_scenario_session, noise_free):
        assert isinstance(noise_free, MeasuredScenario)
        assert isinstance(noise_free, Scenario)
        assert noise_free.name == small_scenario_session.name
        assert noise_free.routing is small_scenario_session.routing
        assert noise_free.day_series is small_scenario_session.day_series

    def test_truth_is_untouched(self, small_scenario_session, noise_free):
        assert np.allclose(
            noise_free.busy_series().as_array(),
            small_scenario_session.busy_series().as_array(),
        )
        assert np.allclose(
            noise_free.busy_mean_matrix().vector,
            small_scenario_session.busy_mean_matrix().vector,
        )

    def test_measured_day_series_aligns_with_truth(self, small_scenario_session, noise_free):
        measured = noise_free.measured_day_series()
        day = small_scenario_session.day_series
        assert len(measured) == len(day)
        assert np.allclose(measured.timestamps(), day.timestamps())
        assert np.allclose(measured.as_array(), day.as_array(), rtol=1e-5, atol=1e-3)

    def test_collection_runs_once_and_is_lazy(self, small_scenario_session):
        measured = small_scenario_session.measured(seed=1)
        assert measured._collector is None
        first = measured.collector
        assert measured.collector is first

    def test_noise_free_diagnostics_are_clean(self, noise_free):
        diagnostics = noise_free.measurement_diagnostics()
        assert diagnostics.interpolated_samples == 0
        assert diagnostics.num_intervals == len(noise_free.day_series)

    def test_measurement_is_deterministic_for_seed(self, small_scenario_session):
        first = small_scenario_session.measured(
            jitter_std_seconds=2.0, loss_probability=0.1, seed=7
        )
        second = small_scenario_session.measured(
            jitter_std_seconds=2.0, loss_probability=0.1, seed=7
        )
        assert np.allclose(
            first.measured_day_series().as_array(),
            second.measured_day_series().as_array(),
        )


class TestMeasuredProblems:
    def test_noise_free_series_problem_matches_consistent(
        self, small_scenario_session, noise_free
    ):
        consistent = small_scenario_session.series_problem(window_length=10)
        measured = noise_free.series_problem(window_length=10)
        assert np.allclose(
            measured.link_load_series, consistent.link_load_series, rtol=1e-5, atol=1e-3
        )
        assert np.allclose(
            measured.origin_totals_series,
            consistent.origin_totals_series,
            rtol=1e-5,
            atol=1e-3,
        )
        assert measured.origin_names == consistent.origin_names
        assert measured.destination_names == consistent.destination_names

    def test_noise_free_snapshot_problem_matches_consistent(
        self, small_scenario_session, noise_free
    ):
        consistent = small_scenario_session.snapshot_problem()
        measured = noise_free.snapshot_problem()
        assert np.allclose(measured.link_loads, consistent.link_loads, rtol=1e-5, atol=1e-3)
        for name in consistent.origin_totals:
            assert measured.origin_totals[name] == pytest.approx(
                consistent.origin_totals[name], rel=1e-5
            )

    def test_explicit_matrix_falls_back_to_consistent(self, noise_free, small_truth):
        problem = noise_free.snapshot_problem(small_truth)
        assert np.allclose(
            problem.link_loads, noise_free.routing.link_loads(small_truth.vector)
        )

    def test_noise_perturbs_the_link_loads(self, small_scenario_session):
        noisy = small_scenario_session.measured(
            jitter_std_seconds=5.0, loss_probability=0.1, seed=3
        )
        consistent = small_scenario_session.series_problem(window_length=10)
        measured = noisy.series_problem(window_length=10)
        assert not np.allclose(
            measured.link_load_series, consistent.link_load_series, rtol=1e-9, atol=1e-9
        )
        assert np.all(np.isfinite(measured.link_load_series))
        assert noisy.measurement_diagnostics().interpolated_samples > 0

    def test_window_length_validation(self, noise_free):
        with pytest.raises(TrafficError):
            noise_free.series_problem(window_length=0)
        with pytest.raises(TrafficError):
            noise_free.series_problem(window_length=10_000)


class TestMeasuredSweepParity:
    def test_noise_free_sweep_reproduces_consistent_mres(
        self, small_scenario_session, noise_free
    ):
        """End-to-end parity: every registered method scores identically."""
        methods = available_estimators()
        consistent = {
            record.method: record
            for record in small_scenario_session.sweep(methods=methods, window_length=10)
        }
        measured = {
            record.method: record
            for record in noise_free.sweep(methods=methods, window_length=10)
        }
        assert set(consistent) == set(measured) == set(methods)
        for name in methods:
            assert consistent[name].skipped == measured[name].skipped, name
            if consistent[name].skipped:
                continue
            assert measured[name].mre == pytest.approx(
                consistent[name].mre, rel=1e-4, abs=1e-6
            ), name

    def test_noisy_sweep_still_runs_every_method(self, small_scenario_session):
        noisy = small_scenario_session.measured(
            jitter_std_seconds=5.0, loss_probability=0.05, seed=2
        )
        records = noisy.sweep(methods=["gravity", "kruithof", "fanout"], window_length=10)
        assert all(not record.skipped for record in records)
        assert all(np.isfinite(record.mre) for record in records)
