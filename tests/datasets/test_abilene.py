"""Tests for the Abilene scenario and its real-topology generator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import abilene_scenario
from repro.topology import ABILENE_CITIES, abilene_backbone


@pytest.fixture(scope="module")
def scenario():
    return abilene_scenario(busy_length=20)


class TestAbileneBackbone:
    def test_real_topology_dimensions(self):
        network = abilene_backbone()
        assert network.num_nodes == 11
        assert network.num_links == 28  # fourteen bidirectional OC-192 trunks
        assert network.num_pairs == 110

    def test_topology_is_deterministic(self):
        first = abilene_backbone()
        second = abilene_backbone()
        assert first.link_names == second.link_names

    def test_all_cities_present(self):
        network = abilene_backbone()
        names = {node.name for node in network.nodes}
        assert names == {city.name for city in ABILENE_CITIES}


class TestAbileneScenario:
    def test_scenario_headline_numbers(self, scenario):
        stats = scenario.describe()
        assert stats["num_pops"] == 11.0
        assert stats["num_links"] == 28.0
        assert stats["num_pairs"] == 110.0
        assert stats["busy_total_traffic"] > 0
        # Far fewer links than pairs: strongly under-determined.
        assert stats["routing_rank"] <= 28.0

    def test_scenario_is_deterministic(self):
        first = abilene_scenario(busy_length=10)
        second = abilene_scenario(busy_length=10)
        np.testing.assert_allclose(
            first.busy_mean_matrix().vector, second.busy_mean_matrix().vector
        )

    def test_estimation_problems_are_consistent(self, scenario):
        problem = scenario.snapshot_problem()
        truth = scenario.busy_mean_matrix()
        np.testing.assert_allclose(
            problem.link_loads, scenario.routing.link_loads(truth.vector)
        )
        assert problem.origin_totals == pytest.approx(truth.origin_totals())

    def test_methods_run_on_the_third_scenario(self, scenario):
        records = scenario.sweep(
            methods=("gravity", "kruithof", "bayesian"), window_length=4
        )
        assert all(not record.skipped for record in records)
        assert all(np.isfinite(record.mre) for record in records)
        assert {record.method for record in records} == {"gravity", "kruithof", "bayesian"}
