"""The large random-backbone scenario used by the scaling benchmarks."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import large_scenario


@pytest.fixture(scope="module")
def scenario():
    return large_scenario(30, seed=7, num_samples=12, busy_length=8)


class TestLargeScenario:
    def test_shape_and_sparse_backend(self, scenario):
        assert scenario.network.num_nodes == 30
        assert scenario.network.num_pairs == 30 * 29
        # At this size auto-selection must pick CSR: the matrix crosses the
        # size threshold and backbone density is a few percent.
        assert scenario.routing.backend_kind == "sparse"
        assert scenario.routing.density < 0.1
        assert len(scenario.day_series) == 12
        assert scenario.busy_length == 8

    def test_deterministic_for_seed(self):
        first = large_scenario(12, seed=3, num_samples=6, busy_length=4)
        second = large_scenario(12, seed=3, num_samples=6, busy_length=4)
        np.testing.assert_array_equal(
            first.day_series.as_array(), second.day_series.as_array()
        )
        other = large_scenario(12, seed=4, num_samples=6, busy_length=4)
        assert not np.array_equal(
            first.day_series.as_array(), other.day_series.as_array()
        )

    def test_consistent_problems_and_sweep(self, scenario):
        problem = scenario.series_problem()
        assert problem.series.shape == (8, scenario.network.num_links)
        records = scenario.sweep(methods=("gravity", "kruithof"))
        by_method = {record.method: record for record in records}
        assert not by_method["gravity"].skipped
        assert not by_method["kruithof"].skipped
        assert np.isfinite(by_method["gravity"].mre)

    def test_total_traffic_scales_with_nodes(self):
        scenario = large_scenario(12, seed=3, num_samples=6, busy_length=4)
        total = scenario.busy_mean_matrix().total
        # 600 Mbit/s per PoP at the diurnal level of the sampled window.
        assert 0.1 * 600 * 12 < total < 2 * 600 * 12
