"""The supervised estimator: budgets, retries, fallback chains, reporting.

The contract under test: whatever the chain returns is a *labelled* result
— a clean primary run carries a non-degraded report, every retry/fallback
shows up as events, a fallback changes ``used``, and total failure raises
an :class:`~repro.errors.EstimationError` naming every attempt.  Budget
exhaustion must come from the cooperative ticks inside the real solver
loops, not from a wrapper timeout.
"""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from repro.datasets import small_scenario
from repro.errors import BudgetExceededError, EstimationError
from repro.estimation import available_estimators, get_estimator
from repro.resilience import SolverBudget, SupervisedEstimator, budget_tick
from repro.resilience.report import degradation_from_diagnostics


@pytest.fixture(scope="module")
def problem():
    scenario = small_scenario(seed=5, num_nodes=6, busy_length=8, num_samples=16)
    return scenario.snapshot_problem()


@pytest.fixture(scope="module")
def series_problem():
    scenario = small_scenario(seed=5, num_nodes=6, busy_length=8, num_samples=16)
    return scenario.series_problem(window_length=4)


def test_registered_by_name():
    assert "supervised" in available_estimators()
    assert isinstance(get_estimator("supervised"), SupervisedEstimator)


def test_clean_run_matches_primary_and_reports_clean(problem):
    direct = get_estimator("tomogravity").estimate(problem)
    supervised = SupervisedEstimator(primary="tomogravity").estimate(problem)
    np.testing.assert_allclose(supervised.vector, direct.vector)
    assert supervised.method == "supervised"
    report = degradation_from_diagnostics(supervised.diagnostics)
    assert report is not None
    assert not report.degraded
    assert report.requested == report.used == "tomogravity"
    assert report.attempts == 1


def test_injected_failure_consumes_a_retry(problem):
    estimator = SupervisedEstimator(
        primary="tomogravity", retries=1, inject_failures=1
    )
    with pytest.warns(RuntimeWarning, match="supervised estimation degraded"):
        result = estimator.estimate(problem)
    report = degradation_from_diagnostics(result.diagnostics)
    assert report.degraded
    assert report.used == "tomogravity"  # the retry rescued the primary
    assert report.attempts == 2
    stages = [event.stage for event in report.events]
    assert "estimate" in stages and "retry" in stages


def test_exhausted_primary_falls_back_down_the_chain(problem):
    estimator = SupervisedEstimator(
        primary="tomogravity",
        fallbacks=("gravity",),
        retries=1,
        inject_failures=2,  # first attempt + its retry both fail
    )
    with pytest.warns(RuntimeWarning):
        result = estimator.estimate(problem)
    report = degradation_from_diagnostics(result.diagnostics)
    assert report.requested == "tomogravity"
    assert report.used == "gravity"
    assert report.attempts == 3
    np.testing.assert_allclose(
        result.vector, get_estimator("gravity").estimate(problem).vector
    )


def test_iteration_budget_fires_inside_the_entropy_newton_loop(problem):
    estimator = SupervisedEstimator(
        primary="entropy",
        primary_params={"prior": "gravity"},
        fallbacks=("gravity",),
        max_iterations=2,
        retries=0,
    )
    with pytest.warns(RuntimeWarning):
        result = estimator.estimate(problem)
    report = degradation_from_diagnostics(result.diagnostics)
    assert report.used == "gravity"
    assert any(
        event.stage == "budget" and event.kind == "BudgetExceededError"
        for event in report.events
    )


def test_budget_ticks_raise_inside_ipf_loops():
    from repro.optimize.ipf import kruithof_scaling

    rng = np.random.default_rng(0)
    matrix = rng.uniform(0.1, 1.0, size=(6, 6))
    with SolverBudget(max_iterations=1):
        with pytest.raises(BudgetExceededError):
            kruithof_scaling(
                matrix,
                np.arange(1.0, 7.0),
                np.arange(6.0, 0.0, -1.0),
                tolerance=1e-12,
            )


def test_budget_tick_is_a_noop_without_an_active_budget():
    budget_tick()  # must not raise
    budget_tick(count=1000)


def test_total_failure_raises_with_the_full_story(problem):
    estimator = SupervisedEstimator(
        primary="tomogravity", fallbacks=(), retries=1, inject_failures=10
    )
    with pytest.raises(EstimationError, match="supervised estimation failed"):
        estimator.estimate(problem)


def test_unknown_fallback_is_an_event_not_a_crash(problem):
    estimator = SupervisedEstimator(
        primary="no-such-method", fallbacks=("gravity",), retries=0
    )
    with pytest.warns(RuntimeWarning):
        result = estimator.estimate(problem)
    report = degradation_from_diagnostics(result.diagnostics)
    assert report.used == "gravity"
    assert any(event.stage == "construct" for event in report.events)


def test_retry_perturbations_are_deterministic(problem):
    estimator = SupervisedEstimator(retry_seed=3)
    first = estimator._perturbed_start(problem, attempt=1)
    second = SupervisedEstimator(retry_seed=3)._perturbed_start(problem, attempt=1)
    np.testing.assert_array_equal(first, second)
    assert not np.array_equal(first, estimator._perturbed_start(problem, attempt=2))
    assert (first > 0).all()


def test_estimate_series_walks_the_same_chain(series_problem):
    estimator = SupervisedEstimator(
        primary="tomogravity", fallbacks=("gravity",), retries=0, inject_failures=1
    )
    with pytest.warns(RuntimeWarning):
        result = estimator.estimate_series(series_problem)
    report = degradation_from_diagnostics(result.diagnostics)
    assert report.used == "gravity"
    direct = get_estimator("gravity").estimate_series(series_problem)
    np.testing.assert_allclose(result.estimates, direct.estimates)


def test_report_round_trips_through_plain_dicts(problem):
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        result = SupervisedEstimator(inject_failures=1, retries=1).estimate(problem)
    report = degradation_from_diagnostics(result.diagnostics)
    assert report.to_dict() == result.diagnostics["degradation"]
    assert degradation_from_diagnostics({"degradation": report.to_dict()}) == report
