"""Composed fault interactions: multiple events corrupting one archive.

The single-event tests in ``test_faults.py`` pin down each failure mode in
isolation; these tests exercise the interactions the streaming PR cares
about — a Counter32 line card *and* clock drift hitting the same polls,
and a collector outage that runs off the end of the schedule (so there are
no trailing good polls to recover from).
"""

from __future__ import annotations

import numpy as np

from repro.datasets import small_scenario
from repro.measurement.collector import DistributedCollector
from repro.measurement.snmp import SNMPPoller, rates_from_poll_matrix
from repro.resilience import ClockSkew, CollectorOutage, Counter32Wrap, fault_plan

OBJECTS = ("a", "b", "c")
RATES = np.full((10, len(OBJECTS)), 10.0)  # 10 Mbit/s sustained


def clean_poller() -> SNMPPoller:
    return SNMPPoller(OBJECTS, interval_seconds=300.0, jitter_std_seconds=0.0, seed=0)


class TestCounter32WrapPlusClockSkew:
    def test_wrap_recovery_survives_skewed_timestamps(self):
        # 10 Mbit/s * 300 s = 3.75e8 bytes/interval: a 32-bit counter wraps
        # roughly every 11 intervals, and the skewed clock stretches one
        # interval's elapsed time.  Both effects must compose: wraps are
        # still recovered, and only the skew-onset interval is biased.
        plan = fault_plan(
            Counter32Wrap(),
            ClockSkew(offset_seconds=30.0, start_round=4),
            seed=3,
        )
        long_rates = np.full((24, len(OBJECTS)), 10.0)
        polls = plan.apply_to_polls(clean_poller().run_schedule_matrix(long_rates))
        assert polls.counter_bits == 32

        rates, diagnostics = rates_from_poll_matrix(polls)
        assert diagnostics.wrap_samples > 0
        assert diagnostics.reset_samples == 0
        # Interval 3 (rounds 3 -> 4) spans the skew onset: 330 s of elapsed
        # clock for 300 s of traffic biases its rate down by 10/11.
        np.testing.assert_allclose(rates[3], 10.0 * 300.0 / 330.0)
        # Every other interval sees consistent timestamps and exact rates.
        steady = np.delete(rates, 3, axis=0)
        np.testing.assert_allclose(steady, 10.0)

    def test_composed_plan_is_deterministic(self):
        plan = fault_plan(
            Counter32Wrap(), ClockSkew(offset_seconds=12.5, start_round=2), seed=9
        )
        first = plan.apply_to_polls(clean_poller().run_schedule_matrix(RATES))
        second = plan.apply_to_polls(clean_poller().run_schedule_matrix(RATES))
        np.testing.assert_array_equal(first.counters, second.counters)
        np.testing.assert_array_equal(first.response_times, second.response_times)


class TestCollectorOutageAtScheduleEnd:
    def test_outage_spanning_schedule_end_is_clamped(self):
        # 10 rounds of polls (rounds 0-10 inclusive of the priming round);
        # the outage claims rounds 8-14, running past the end.  The event
        # must clamp instead of raising, and every poll from round 8 on is
        # lost with no recovery tail.
        plan = fault_plan(CollectorOutage(poller_index=0, start_round=8, num_rounds=7))
        polls = plan.for_poller(0).apply_to_polls(
            clean_poller().run_schedule_matrix(RATES)
        )
        assert polls.lost[8:].all()
        assert not polls.lost[:8].any()

        # The batch path extrapolates the trailing hole from the last valid
        # samples instead of failing on it.
        rates, diagnostics = rates_from_poll_matrix(polls)
        assert diagnostics.interpolated_samples > 0
        assert diagnostics.validity is not None
        assert not diagnostics.validity[-1].any()
        np.testing.assert_allclose(rates[-1], rates[6])

    def test_outage_scopes_to_its_poller(self):
        plan = fault_plan(CollectorOutage(poller_index=1, start_round=8, num_rounds=7))
        unaffected = plan.for_poller(0).apply_to_polls(
            clean_poller().run_schedule_matrix(RATES)
        )
        assert not unaffected.lost.any()

    def test_full_pipeline_survives_trailing_outage(self):
        # End-to-end: a two-poller collector whose poller 0 dies for good
        # mid-schedule still produces a complete measured series.
        scenario = small_scenario(seed=5, num_nodes=5, num_samples=10)
        plan = fault_plan(CollectorOutage(poller_index=0, start_round=7, num_rounds=10))
        collector = DistributedCollector(
            scenario.routing,
            num_pollers=2,
            jitter_std_seconds=0.0,
            loss_probability=0.0,
            seed=4,
            fault_plan=plan,
        )
        collector.collect(scenario.day_series)
        measured = collector.measured_traffic_series()
        assert len(measured) == len(scenario.day_series)
        diagnostics = collector.collection_diagnostics()
        assert diagnostics.lost_samples > 0
        # The unaffected poller's objects keep tracking the true series.
        loads = collector.measured_link_loads()
        assert np.isfinite(loads).all()
