"""Seeded fault plans: deterministic corruption of poll matrices.

The contract under test: a :class:`~repro.resilience.FaultPlan` is a seed
plus an ordered event tuple, and applying the same plan to the same clean
archive always produces the same corrupted archive — the property that
makes chaos drills reproducible.  Each event class is checked against the
real failure mode it models (UDP bursts, reboots, Counter32 wraps, clock
drift, frozen line cards, dead pollers).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.measurement.snmp import SNMPPoller, rates_from_poll_matrix
from repro.resilience import (
    ClockSkew,
    CollectorOutage,
    Counter32Wrap,
    CounterReset,
    FaultPlan,
    PollLossBurst,
    StuckCounter,
    WorkerFaultPlan,
    fault_plan,
)

OBJECTS = ("a", "b", "c")
RATES = np.full((8, len(OBJECTS)), 10.0)  # 10 Mbit/s sustained


def clean_polls(counter_bits: int = 64, jitter: float = 0.0):
    poller = SNMPPoller(
        OBJECTS,
        interval_seconds=300.0,
        jitter_std_seconds=jitter,
        seed=0,
        counter_bits=counter_bits,
    )
    return poller.run_schedule_matrix(RATES)


def test_same_seed_reproduces_identical_archive():
    plan = fault_plan(
        PollLossBurst(start_round=1, num_rounds=3, fraction=0.5),
        CounterReset(round_index=5),
        seed=42,
    )
    first = plan.apply_to_polls(clean_polls(), salt=7)
    second = plan.apply_to_polls(clean_polls(), salt=7)
    np.testing.assert_array_equal(first.lost, second.lost)
    np.testing.assert_array_equal(first.counters, second.counters)
    np.testing.assert_array_equal(first.response_times, second.response_times)


def test_different_seed_or_salt_changes_probabilistic_events():
    event = PollLossBurst(start_round=0, num_rounds=9, fraction=0.5)
    base = FaultPlan(seed=1, events=(event,)).apply_to_polls(clean_polls())
    reseeded = FaultPlan(seed=2, events=(event,)).apply_to_polls(clean_polls())
    resalted = FaultPlan(seed=1, events=(event,)).apply_to_polls(clean_polls(), salt=1)
    assert not np.array_equal(base.lost, reseeded.lost)
    assert not np.array_equal(base.lost, resalted.lost)


def test_plan_does_not_mutate_the_input_matrix():
    polls = clean_polls()
    lost_before = polls.lost.copy()
    fault_plan(PollLossBurst(start_round=0, num_rounds=9)).apply_to_polls(polls)
    np.testing.assert_array_equal(polls.lost, lost_before)


def test_poll_loss_burst_blacks_out_rounds():
    plan = fault_plan(PollLossBurst(start_round=2, num_rounds=3))
    polls = plan.apply_to_polls(clean_polls())
    assert polls.lost[2:5].all()
    assert not polls.lost[:2].any() and not polls.lost[5:].any()


def test_poll_loss_burst_scopes_to_named_objects():
    plan = fault_plan(
        PollLossBurst(start_round=0, num_rounds=9, objects=("b", "missing-name"))
    )
    polls = plan.apply_to_polls(clean_polls())
    assert polls.lost[:, 1].all()  # "b"
    assert not polls.lost[:, [0, 2]].any()  # "a", "c" untouched


def test_counter_reset_detected_and_interpolated():
    plan = fault_plan(CounterReset(round_index=4))
    polls = plan.apply_to_polls(clean_polls())
    assert (polls.counters[4] == 0).all()  # reboot-to-zero
    rates, diagnostics = rates_from_poll_matrix(polls)
    assert diagnostics.reset_samples == len(OBJECTS)
    assert diagnostics.wrap_samples == 0
    # The reset interval is interpolated from its valid neighbours (all 10).
    np.testing.assert_allclose(rates, 10.0, rtol=1e-6)


def test_counter32_wrap_recovers_true_rates():
    plan = fault_plan(Counter32Wrap())
    polls = plan.apply_to_polls(clean_polls())
    assert polls.counter_bits == 32
    clean_rates, _ = rates_from_poll_matrix(clean_polls())
    rates, diagnostics = rates_from_poll_matrix(polls)
    # 10 Mbit/s * 300 s = 3.75e8 bytes per interval < 2**31: every wrap is
    # unambiguous and the wrapped archive yields the exact clean rates.
    np.testing.assert_allclose(rates, clean_rates)
    assert diagnostics.reset_samples == 0


def test_clock_skew_shifts_responses_and_rates():
    plan = fault_plan(ClockSkew(offset_seconds=30.0, start_round=4, objects=("a",)))
    polls = plan.apply_to_polls(clean_polls())
    rates, _ = rates_from_poll_matrix(polls)
    # Interval 3 -> 4 of "a" spans 330 s of wall clock for 300 s of bytes.
    np.testing.assert_allclose(rates[3, 0], 10.0 * 300.0 / 330.0)
    # Later intervals are uniformly shifted, so their rates are clean again.
    np.testing.assert_allclose(rates[4:, 0], 10.0)
    np.testing.assert_allclose(rates[:, 1:], 10.0)


def test_stuck_counter_reads_silence_then_catchup_burst():
    plan = fault_plan(StuckCounter(start_round=3, num_rounds=3, objects=("c",)))
    polls = plan.apply_to_polls(clean_polls())
    rates, _ = rates_from_poll_matrix(polls)
    np.testing.assert_allclose(rates[3:5, 2], 0.0)  # frozen window
    np.testing.assert_allclose(rates[5, 2], 30.0)  # 3 intervals of catch-up
    np.testing.assert_allclose(rates[:3, 2], 10.0)


def test_collector_outage_resolves_per_poller():
    plan = fault_plan(
        CollectorOutage(poller_index=1, start_round=2, num_rounds=2),
        CounterReset(round_index=6),
    )
    affected = plan.for_poller(1)
    bystander = plan.for_poller(0)
    assert any(isinstance(e, PollLossBurst) for e in affected.events)
    assert not any(isinstance(e, (PollLossBurst, CollectorOutage)) for e in bystander.events)
    # Shared events survive for every poller.
    assert any(isinstance(e, CounterReset) for e in bystander.events)
    # Applied to a standalone matrix the outage is inert.
    polls = plan.apply_to_polls(clean_polls())
    assert not polls.lost.any()


def test_worker_fault_plan_fires_by_task_and_round():
    plan = WorkerFaultPlan(crash_tasks=(0,), hang_tasks=(2,), crash_rounds=2)
    assert plan.fires(0, 0) == "crash"
    assert plan.fires(0, 1) == "crash"
    assert plan.fires(0, 2) is None  # crash budget exhausted
    assert plan.fires(2, 0) == "hang"
    assert plan.fires(2, 1) is None  # default hang_rounds = 1
    assert plan.fires(1, 0) is None


def test_describe_names_the_events():
    plan = fault_plan(
        PollLossBurst(start_round=0, num_rounds=1),
        seed=9,
        worker=WorkerFaultPlan(crash_tasks=(0,)),
    )
    text = plan.describe()
    assert "PollLossBurst" in text and "worker faults" in text and "seed=9" in text


def test_events_compose_in_order():
    # Reset after a wrap downgrade: both effects must be visible.
    plan = fault_plan(Counter32Wrap(), CounterReset(round_index=5))
    polls = plan.apply_to_polls(clean_polls())
    assert polls.counter_bits == 32
    assert (polls.counters[5] == 0).all()
    rates, diagnostics = rates_from_poll_matrix(polls)
    assert diagnostics.reset_samples == len(OBJECTS)
    np.testing.assert_allclose(rates, 10.0, rtol=1e-6)


def test_empty_plan_is_identity():
    polls = clean_polls()
    assert FaultPlan(seed=3).apply_to_polls(polls) is polls
