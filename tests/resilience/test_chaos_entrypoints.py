"""Chaos drill: every experiment entry point survives every fault class.

The PR's acceptance contract: under seeded fault plans — poll-loss bursts,
counter resets, clock skew, stuck counters, collector outages, worker
crashes, worker hangs, and solver non-convergence — all four entry points
(:func:`~repro.evaluation.experiments.run_method_specs`,
:func:`~repro.evaluation.experiments.robustness_sweep`,
:func:`~repro.planning.sweep.failure_sweep`, and ``Scenario.sweep`` with
the sharded estimator) complete without an unhandled exception, every
degraded result carries a structured degradation report naming the fault
and the fallback, and serial and parallel runs produce identical records
*including* those reports.

``CHAOS_SEED`` (environment) shifts every plan seed, so CI can sweep a
seed matrix without code changes.
"""

from __future__ import annotations

import math
import os
import warnings

import numpy as np
import pytest

from repro.datasets import small_scenario
from repro.evaluation.experiments import (
    MethodSpec,
    robustness_sweep,
    run_method_specs,
)
from repro.parallel import clear_worker_faults, install_worker_faults
from repro.planning.sweep import failure_sweep
from repro.resilience import (
    ClockSkew,
    CollectorOutage,
    CounterReset,
    PollLossBurst,
    StuckCounter,
    WorkerFaultPlan,
    fault_plan,
)

CHAOS_SEED = int(os.environ.get("CHAOS_SEED", "0"))

#: One representative plan per measurement fault class.  Counter32 wraps are
#: exercised at the SNMP layer (tests/measurement), where rates can be kept
#: below the half-space disambiguation bound; this scenario's ~650 Mbit/s
#: links overrun a 32-bit counter within one 300 s interval by design.
MEASUREMENT_PLANS = {
    "poll-loss-burst": fault_plan(
        PollLossBurst(start_round=3, num_rounds=4, fraction=0.7), seed=CHAOS_SEED
    ),
    "counter-reset": fault_plan(CounterReset(round_index=9), seed=CHAOS_SEED + 1),
    "clock-skew": fault_plan(
        ClockSkew(offset_seconds=20.0, start_round=5), seed=CHAOS_SEED + 2
    ),
    "stuck-counter": fault_plan(
        StuckCounter(start_round=4, num_rounds=3), seed=CHAOS_SEED + 3
    ),
    "collector-outage": fault_plan(
        CollectorOutage(poller_index=0, start_round=6, num_rounds=2),
        seed=CHAOS_SEED + 4,
    ),
}

SPECS = (
    MethodSpec(label="Gravity", estimator="gravity"),
    MethodSpec(label="Tomogravity", estimator="tomogravity"),
    MethodSpec(
        label="Supervised entropy",
        estimator="supervised",
        params={
            "primary": "entropy",
            "primary_params": {"prior": "gravity"},
            "fallbacks": ("tomogravity", "gravity"),
            "max_iterations": 2,  # solver non-convergence: budget always fires
            "retries": 0,
        },
    ),
)


@pytest.fixture(scope="module")
def scenario():
    return small_scenario(seed=7, num_nodes=6, busy_length=8, num_samples=16)


@pytest.fixture(autouse=True)
def no_leftover_faults():
    clear_worker_faults()
    yield
    clear_worker_faults()


def records_identical(first, second):
    assert len(first) == len(second)
    for a, b in zip(first, second):
        for fld in a.__dataclass_fields__:
            left, right = getattr(a, fld), getattr(b, fld)
            if isinstance(left, float) and math.isnan(left):
                assert isinstance(right, float) and math.isnan(right), fld
            else:
                assert left == right, fld


def test_run_method_specs_under_solver_and_worker_faults(scenario):
    install_worker_faults(
        WorkerFaultPlan(crash_tasks=(0,), hang_tasks=(1,), hang_seconds=30.0)
    )
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        serial = run_method_specs(scenario, SPECS, n_jobs=1, skip_errors=True)
        parallel = run_method_specs(
            scenario, SPECS, n_jobs=2, skip_errors=True, task_timeout=60.0
        )
    records_identical(serial, parallel)
    degraded = {r.method: r for r in serial if r.degradation is not None}
    report = degraded["Supervised entropy"].degradation
    assert report["degraded"]
    assert report["requested"] == "entropy"
    assert report["used"] in ("tomogravity", "gravity")
    assert any(e["stage"] == "budget" for e in report["events"])
    assert all(np.isfinite(r.mre) for r in serial)


@pytest.mark.parametrize("fault_name", sorted(MEASUREMENT_PLANS))
def test_robustness_sweep_under_measurement_faults(scenario, fault_name):
    plan = MEASUREMENT_PLANS[fault_name]
    kwargs = dict(
        jitter_values=(0.0, 1.0),
        loss_values=(0.02,),
        methods=["gravity", "tomogravity"],
        seed=CHAOS_SEED,
        fault_plan=plan,
        num_pollers=2,
    )
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        serial = robustness_sweep(scenario, n_jobs=1, **kwargs)
        parallel = robustness_sweep(scenario, n_jobs=2, **kwargs)
    records_identical(serial, parallel)
    assert len(serial) == 4  # 2 jitter x 1 loss x 2 methods
    for record in serial:
        assert record.error == "" and np.isfinite(record.mre)


def test_failure_sweep_reports_fallbacks_per_case(scenario):
    specs = [
        MethodSpec(label="Gravity", estimator="gravity"),
        MethodSpec(
            label="Supervised",
            estimator="supervised",
            params={
                "primary": "tomogravity",
                "fallbacks": ("gravity",),
                "retries": 0,
                "inject_failures": 1,
            },
        ),
    ]
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        serial = failure_sweep(scenario, specs=specs, n_jobs=1)
        parallel = failure_sweep(scenario, specs=specs, n_jobs=2)
    records_identical(serial, parallel)
    supervised = [r for r in serial if r.method == "Supervised"]
    assert supervised
    for record in supervised:
        assert record.degradation is not None
        assert record.degradation["used"] == "gravity"
        assert any(
            "injected failure" in e["detail"] for e in record.degradation["events"]
        )


@pytest.mark.parametrize("fault_name", ["poll-loss-burst", "collector-outage"])
def test_scenario_sweep_with_sharded_estimator_under_faults(scenario, fault_name):
    measured = scenario.measured(
        loss_probability=0.02,
        num_pollers=2,
        seed=CHAOS_SEED,
        fault_plan=MEASUREMENT_PLANS[fault_name],
    )
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        records = measured.sweep(
            methods=[
                ("sharded", {"base": "gravity", "num_regions": 2}),
                (
                    "supervised",
                    {"primary": "entropy", "max_iterations": 2, "retries": 0,
                     "primary_params": {"prior": "gravity"}},
                ),
            ],
            window_length=4,
        )
    assert [r.method for r in records] == ["sharded", "supervised"]
    for record in records:
        assert not record.skipped and np.isfinite(record.mre)
    supervised = records[1]
    assert supervised.degradation is not None and supervised.degradation["degraded"]
    assert supervised.degradation["requested"] == "entropy"
