"""Supervised pool execution: crashes, hangs, and the serial safety net.

The contract under test: :func:`repro.parallel.run_supervised_tasks`
returns the same results as the plain serial loop no matter what the pool
infrastructure does — a worker crash triggers resubmission on a fresh
pool, an exhausted resubmission budget falls back to serial re-execution
in the parent (where injected faults never fire), a hung task is cut off
by the per-task timeout, and *task-level* exceptions still propagate
unchanged.  Pool incidents surface as ``RuntimeWarning``s and
:class:`~repro.parallel.PoolReport` events, never inside the results.
"""

from __future__ import annotations

import warnings

import pytest

from repro.errors import EstimationError
from repro.parallel import (
    PoolReport,
    clear_worker_faults,
    install_worker_faults,
    run_supervised_tasks,
)
from repro.resilience import WorkerFaultPlan


def square(value):
    return value * value


def failing(value):
    raise EstimationError(f"task {value} failed")


@pytest.fixture(autouse=True)
def no_leftover_faults():
    clear_worker_faults()
    yield
    clear_worker_faults()


TASKS = [(i,) for i in range(6)]
EXPECTED = [i * i for i in range(6)]


def test_serial_path_runs_in_the_parent():
    results, report = run_supervised_tasks(square, TASKS, jobs=1)
    assert results == EXPECTED
    assert report == PoolReport()
    assert not report.degraded


def test_clean_pool_matches_serial():
    results, report = run_supervised_tasks(square, TASKS, jobs=2)
    assert results == EXPECTED
    assert not report.degraded


def test_worker_crash_is_resubmitted():
    install_worker_faults(WorkerFaultPlan(crash_tasks=(2,), crash_rounds=1))
    with pytest.warns(RuntimeWarning, match="pool degradation"):
        results, report = run_supervised_tasks(square, TASKS, jobs=2)
    assert results == EXPECTED
    kinds = {event.kind for event in report.events}
    assert "broken-pool" in kinds and "resubmitted" in kinds


def test_persistent_crash_falls_back_to_serial_rerun():
    # The fault fires on every pool attempt; only the parent can finish it.
    install_worker_faults(WorkerFaultPlan(crash_tasks=(1,), crash_rounds=99))
    with pytest.warns(RuntimeWarning):
        results, report = run_supervised_tasks(
            square, TASKS, jobs=2, max_resubmissions=1
        )
    assert results == EXPECTED
    assert any(event.kind == "serial-rerun" for event in report.events)


def test_hung_task_is_cut_off_by_the_timeout():
    install_worker_faults(
        WorkerFaultPlan(hang_tasks=(0,), hang_seconds=60.0, hang_rounds=99)
    )
    with pytest.warns(RuntimeWarning):
        results, report = run_supervised_tasks(
            square, TASKS, jobs=2, timeout=1.5, max_resubmissions=0
        )
    assert results == EXPECTED  # serial rerun finished the hung task
    kinds = [event.kind for event in report.events]
    assert "timeout" in kinds and "serial-rerun" in kinds


def test_task_exceptions_propagate_unchanged():
    with pytest.raises(EstimationError, match="task 3 failed"):
        run_supervised_tasks(failing, [(3,)], jobs=1)
    with pytest.raises(EstimationError, match="task 0 failed"):
        run_supervised_tasks(failing, [(i,) for i in range(4)], jobs=2)


def test_faults_never_fire_in_the_parent():
    install_worker_faults(WorkerFaultPlan(crash_tasks=tuple(range(6)), crash_rounds=99))
    results, report = run_supervised_tasks(square, TASKS, jobs=1)
    assert results == EXPECTED
    assert not report.degraded


def test_results_keep_task_order_under_chaos():
    install_worker_faults(WorkerFaultPlan(crash_tasks=(0, 4), crash_rounds=1))
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        results, _ = run_supervised_tasks(square, TASKS, jobs=3)
    assert results == EXPECTED
