"""Tests for the batched series-estimation path (``estimate_series``)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import EstimationError
from repro.estimation import get_estimator
from repro.optimize.nnls import nnls_active_set, nnls_normal_equations_batch

WINDOW = 8


@pytest.fixture(scope="module")
def scenario():
    from repro.datasets import small_scenario

    return small_scenario(seed=11, num_nodes=6, busy_length=20, num_samples=60)


@pytest.fixture(scope="module")
def series_problem(scenario):
    return scenario.series_problem(window_length=WINDOW)


def per_snapshot_loop(estimator, problem):
    """The reference semantics every batched override must reproduce."""
    return np.stack(
        [
            estimator.estimate(problem.at_snapshot(index)).vector
            for index in range(problem.series.shape[0])
        ]
    )


class TestBatchedOverridesMatchLoop:
    @pytest.mark.parametrize("method,params", [
        ("gravity", {}),
        ("kruithof", {}),
        ("kruithof", {"prior": "gravity"}),
        ("bayesian", {"regularization": 1000.0, "prior": "gravity"}),
        ("bayesian", {"regularization": 10.0, "prior": "uniform"}),
        ("tomogravity", {"flavour": "bayesian"}),
    ])
    def test_batch_equals_per_snapshot_estimates(self, series_problem, method, params):
        estimator = get_estimator(method, **params)
        batched = estimator.estimate_series(series_problem)
        loop = per_snapshot_loop(estimator, series_problem)
        scale = max(float(loop.max()), 1.0)
        assert batched.estimates.shape == loop.shape
        np.testing.assert_allclose(batched.estimates, loop, atol=1e-6 * scale)

    def test_generic_fallback_matches_loop_by_construction(self, series_problem):
        estimator = get_estimator("kl-projection")
        batched = estimator.estimate_series(series_problem)
        loop = per_snapshot_loop(estimator, series_problem)
        np.testing.assert_allclose(batched.estimates, loop, atol=1e-9)
        assert batched.diagnostics["batched"] is False

    def test_entropy_warm_started_series_matches_loop(self, series_problem):
        estimator = get_estimator("entropy", regularization=100.0)
        batched = estimator.estimate_series(series_problem)
        loop = per_snapshot_loop(estimator, series_problem)
        scale = max(float(loop.max()), 1.0)
        np.testing.assert_allclose(batched.estimates, loop, atol=1e-4 * scale)
        assert batched.diagnostics["batched"] is True
        assert batched.diagnostics["warm_started"] is True
        assert batched.diagnostics["fallback_snapshots"] == 0

    def test_bayesian_explicit_prior_batches(self, series_problem):
        prior = np.full(series_problem.num_pairs, 10.0)
        estimator = get_estimator("bayesian", regularization=50.0, prior=prior)
        batched = estimator.estimate_series(series_problem)
        loop = per_snapshot_loop(estimator, series_problem)
        np.testing.assert_allclose(batched.estimates, loop, atol=1e-6 * float(loop.max()))


class TestWindowLevelMethods:
    def test_vardi_batch_repeats_the_window_estimate(self, series_problem):
        estimator = get_estimator("vardi", poisson_weight=0.01)
        batched = estimator.estimate_series(series_problem)
        single = estimator.estimate(series_problem).vector
        assert len(batched) == WINDOW
        for index in range(WINDOW):
            np.testing.assert_allclose(batched.estimates[index], single)

    def test_vardi_warm_start_reduces_iterations(self, series_problem):
        cold = get_estimator("vardi", poisson_weight=0.01)
        cold_result = cold.estimate(series_problem)
        warm = get_estimator("vardi", poisson_weight=0.01)
        warm.set_warm_start(cold_result.vector)
        warm_result = warm.estimate(series_problem)
        assert (
            warm_result.diagnostics["iterations"]
            < cold_result.diagnostics["iterations"]
        )
        scale = max(1.0, float(cold_result.vector.max()))
        np.testing.assert_allclose(
            warm_result.vector, cold_result.vector, atol=1e-3 * scale
        )
        # The warm start is one-shot: the next call is cold again and
        # reproduces the cold result exactly.
        np.testing.assert_allclose(warm.estimate(series_problem).vector, cold_result.vector)

    def test_fanout_batch_scales_by_snapshot_ingress(self, series_problem):
        estimator = get_estimator("fanout")
        batched = estimator.estimate_series(series_problem)
        # Averaging the per-snapshot estimates recovers the window estimate.
        window = estimator.estimate(series_problem).vector
        np.testing.assert_allclose(batched.estimates.mean(axis=0), window, atol=1e-8)
        # And the snapshots genuinely differ (they track the ingress totals).
        assert not np.allclose(batched.estimates[0], batched.estimates[-1])


class TestSeriesResultContainer:
    def test_container_views(self, series_problem):
        batched = get_estimator("gravity").estimate_series(series_problem)
        assert batched.num_snapshots == WINDOW
        assert batched.matrix(0).pairs == series_problem.pairs
        np.testing.assert_allclose(
            batched.mean_matrix().vector, batched.estimates.mean(axis=0)
        )
        assert batched.result(1).method == "gravity"
        with pytest.raises(EstimationError):
            batched.matrix(WINDOW)

    def test_snapshot_only_problem_has_no_series(self, scenario):
        problem = scenario.snapshot_problem()
        with pytest.raises(EstimationError):
            get_estimator("gravity").estimate_series(problem)

    def test_at_snapshot_bounds_checked(self, series_problem):
        with pytest.raises(EstimationError):
            series_problem.at_snapshot(WINDOW)


class TestNormalEquationsBatchSolver:
    def test_matches_active_set_on_random_problems(self):
        rng = np.random.default_rng(5)
        A = rng.random((40, 25))
        B = rng.normal(size=(40, 12)) * 10.0
        gram = A.T @ A + 1e-6 * np.eye(25)
        solutions, converged = nnls_normal_equations_batch(gram, A.T @ B)
        assert converged.all()
        for col in range(B.shape[1]):
            reference = nnls_active_set(
                np.vstack([A, np.sqrt(1e-6) * np.eye(25)]),
                np.concatenate([B[:, col], np.zeros(25)]),
            ).x
            np.testing.assert_allclose(solutions[:, col], reference, atol=1e-6)

    def test_single_rhs_shape(self):
        gram = np.eye(3)
        solution, converged = nnls_normal_equations_batch(gram, np.array([1.0, -2.0, 3.0]))
        np.testing.assert_allclose(solution, [1.0, 0.0, 3.0])
        assert converged.shape == (1,)


class TestScenarioSweep:
    def test_sweep_scores_registered_methods(self, scenario):
        records = scenario.sweep(
            methods=("gravity", "kruithof", "bayesian", "fanout"), window_length=5
        )
        assert [record.method for record in records] == [
            "gravity",
            "kruithof",
            "bayesian",
            "fanout",
        ]
        for record in records:
            assert not record.skipped
            assert np.isfinite(record.mre)
            assert record.per_snapshot_mre.shape == (5,)

    def test_sweep_default_covers_every_registered_method(self, scenario):
        from repro.estimation import available_estimators

        records = scenario.sweep(window_length=3)
        assert [record.method for record in records] == list(available_estimators())
        ran = {record.method for record in records if not record.skipped}
        assert {"gravity", "kruithof", "bayesian", "entropy", "vardi", "fanout"} <= ran

    def test_sweep_reports_skips_instead_of_raising(self, scenario):
        records = scenario.sweep(methods=("generalized-gravity",), window_length=3)
        assert records[0].skipped
        assert "generalised gravity" in records[0].error

    def test_sweep_accepts_parameterised_methods(self, scenario):
        records = scenario.sweep(
            methods=(("bayesian", {"regularization": 10.0}),), window_length=3
        )
        assert records[0].method == "bayesian"
        assert not records[0].skipped
