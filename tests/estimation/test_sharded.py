"""The hierarchical region-sharded estimator.

The contract under test:

* **degenerate exactness** — on a network whose nodes all share one region
  label (the paper's own extracted subnetworks), sharding is a no-op and
  the result equals the base estimator's, bit for bit;
* **bounded divergence** — multi-region sharding on the named scenarios
  stays in the same accuracy band as the flat solve (the approximation is
  confined to the inter-region block);
* **observation consistency** — the reconciliation pass makes the stitched
  matrix respect the *global* link loads, not just each shard's;
* **composability** — the estimator is a registry citizen: constructible
  by name, usable by ``Scenario.sweep``, accepting any registered method
  as shard solver, and fanning shard solves through the shared-payload
  pool without changing results.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import america_scenario, europe_scenario, small_scenario
from repro.estimation import ShardedEstimator, available_estimators, get_estimator
from repro.estimation.sharded import _solve_shard_pooled
from repro.parallel import release_payload, share_payload
from repro.routing.routing_matrix import RoutingMatrix
from repro.topology.regions import partition_regions


@pytest.fixture(scope="module")
def europe():
    scenario = europe_scenario()
    return scenario, scenario.snapshot_problem(), scenario.busy_snapshot(0).vector


@pytest.fixture(scope="module")
def america():
    scenario = america_scenario()
    return scenario, scenario.snapshot_problem(), scenario.busy_snapshot(0).vector


def top_quartile_mre(estimate, truth):
    mask = truth > np.percentile(truth, 75)
    return float(np.mean(np.abs(estimate[mask] - truth[mask]) / truth[mask]))


def test_registered_by_name():
    assert "sharded" in available_estimators()
    estimator = get_estimator("sharded", base="gravity", num_regions=2)
    assert isinstance(estimator, ShardedEstimator)


def test_single_region_labels_give_exact_base_parity(europe):
    _, problem, _ = europe
    flat = get_estimator("tomogravity").estimate(problem)
    sharded = get_estimator("sharded", base="tomogravity").estimate(problem)
    np.testing.assert_allclose(sharded.vector, flat.vector)
    assert sharded.method == "sharded"
    assert sharded.diagnostics["num_regions"] == 1


@pytest.mark.parametrize("fixture_name", ["europe", "america"])
def test_multi_region_accuracy_stays_in_flat_band(fixture_name, request):
    _, problem, truth = request.getfixturevalue(fixture_name)
    flat = get_estimator("tomogravity").estimate(problem)
    sharded = get_estimator("sharded", base="tomogravity", num_regions=3).estimate(problem)
    assert sharded.diagnostics["num_regions"] == 3
    flat_mre = top_quartile_mre(flat.vector, truth)
    sharded_mre = top_quartile_mre(sharded.vector, truth)
    # Sharding is an approximation; it must not fall off a cliff relative
    # to the flat solve on the paper's scenarios.
    assert sharded_mre <= flat_mre + 0.25


@pytest.mark.parametrize("fixture_name", ["europe", "america"])
def test_reconciliation_respects_global_link_loads(fixture_name, request):
    _, problem, _ = request.getfixturevalue(fixture_name)
    result = get_estimator("sharded", base="tomogravity", num_regions=3).estimate(problem)
    assert result.diagnostics["reconcile_converged"]
    residual = np.abs(problem.routing.link_loads(result.vector) - problem.snapshot)
    assert residual.max() <= 1e-4 * problem.snapshot.max()


def test_reconciliation_can_be_disabled(europe):
    _, problem, _ = europe
    result = get_estimator(
        "sharded", base="gravity", num_regions=2, reconcile=False
    ).estimate(problem)
    assert "reconcile_violation" not in result.diagnostics


def test_custom_partitioner_callable(europe):
    _, problem, _ = europe
    calls = []

    def partitioner(network):
        calls.append(network.name)
        return partition_regions(network, 2, seed=7)

    result = ShardedEstimator(base="gravity", partitioner=partitioner).estimate(problem)
    assert calls  # the callable drove the partition
    assert result.diagnostics["num_regions"] == 2


def test_incomplete_partitioner_rejected(europe):
    from repro.errors import EstimationError

    _, problem, _ = europe
    estimator = ShardedEstimator(
        base="gravity", partitioner=lambda network: {network.node_names[0]: "R00"}
    )
    with pytest.raises(EstimationError, match="unassigned"):
        estimator.estimate(problem)


def test_any_registered_base_method_works(europe):
    _, problem, _ = europe
    for base in ("gravity", "kruithof"):
        result = get_estimator("sharded", base=base, num_regions=2).estimate(problem)
        assert result.vector.shape == (problem.num_pairs,)
        assert result.diagnostics["base_method"] in (base,)


def test_base_instance_and_params_are_exclusive():
    from repro.errors import EstimationError

    with pytest.raises(EstimationError):
        ShardedEstimator(base=get_estimator("gravity"), base_params={"x": 1})


def test_no_network_routing_falls_back_to_flat(europe):
    _, problem, _ = europe
    detached = RoutingMatrix(
        problem.routing.native,
        link_names=problem.routing.link_names,
        pairs=problem.routing.pairs,
        network=None,
    )
    import dataclasses

    stripped = dataclasses.replace(problem, routing=detached)
    flat = get_estimator("tomogravity").estimate(stripped)
    sharded = get_estimator("sharded", base="tomogravity").estimate(stripped)
    np.testing.assert_allclose(sharded.vector, flat.vector)
    assert sharded.diagnostics["sharding"] == "no-network"


def test_scenario_sweep_round_trip():
    scenario = small_scenario(seed=9, num_nodes=6, busy_length=6, num_samples=12)
    records = scenario.sweep(
        methods=[("sharded", {"base": "gravity", "num_regions": 2})],
        window_length=4,
        skip_errors=False,
    )
    assert len(records) == 1
    assert records[0].method == "sharded"
    assert not records[0].skipped


def test_estimate_series_matches_per_snapshot_loop(europe):
    scenario, _, _ = europe
    problem = scenario.series_problem(window_length=4)
    estimator = get_estimator("sharded", base="gravity", num_regions=2)
    batched = estimator.estimate_series(problem)
    for index in range(4):
        single = estimator.estimate(problem.at_snapshot(index))
        np.testing.assert_allclose(batched.estimates[index], single.vector)


def test_shard_pool_worker_matches_direct_solve(europe):
    _, problem, _ = europe
    estimator = ShardedEstimator(base="gravity", num_regions=2)
    region_of = estimator._resolve_regions(problem.routing.network)
    regions, origin_region, destination_region = estimator._pair_regions(
        problem, region_of
    )
    intra_mask = origin_region == destination_region
    intra_cols = {
        region: np.flatnonzero(intra_mask & (origin_region == position))
        for position, region in enumerate(regions)
    }
    prior = estimator._prior_vector(problem)
    _, problems, priors = estimator._shard_problems(
        problem, region_of, intra_cols, prior, prior
    )
    assert problems
    payload_ref = share_payload((estimator._base, problems, priors))
    try:
        index, vector, failure = _solve_shard_pooled(0, payload_ref)
    finally:
        release_payload(payload_ref)
    assert index == 0
    assert failure is None
    np.testing.assert_allclose(vector, estimator._base.estimate(problems[0]).vector)


def test_parallel_shard_solves_match_serial(europe, monkeypatch):
    import os

    _, problem, _ = europe
    serial = ShardedEstimator(base="gravity", num_regions=3, n_jobs=1).estimate(problem)
    monkeypatch.setattr(os, "cpu_count", lambda: 2)
    parallel = ShardedEstimator(base="gravity", num_regions=3, n_jobs=2).estimate(problem)
    np.testing.assert_allclose(parallel.vector, serial.vector)
