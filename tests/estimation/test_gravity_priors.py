"""Tests for gravity estimators and prior construction."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import EstimationError
from repro.estimation import (
    EstimationProblem,
    GeneralizedGravityEstimator,
    SimpleGravityEstimator,
    gravity_prior,
    gravity_vector,
    make_prior,
    uniform_prior,
    worst_case_bound_prior,
)
from repro.routing import build_routing_matrix
from repro.topology import Link, Network, Node, NodePair, NodeRole
from repro.traffic import TrafficMatrix


def gravity_consistent_problem(network, routing):
    """A traffic matrix that satisfies the gravity assumption exactly."""
    origin_weights = {"A": 6.0, "B": 3.0, "C": 1.0}
    total = 100.0
    demands = {}
    for pair in network.node_pairs():
        exit_share = origin_weights[pair.destination] / sum(
            origin_weights[d] for d in origin_weights if d != "__none__"
        )
        demands[pair] = origin_weights[pair.origin] * origin_weights[pair.destination]
    truth = TrafficMatrix.from_network(network, demands)
    truth = truth.scaled(total / truth.total)
    problem = EstimationProblem(
        routing=routing,
        link_loads=routing.link_loads(truth.vector),
        origin_totals=truth.origin_totals(),
        destination_totals=truth.destination_totals(),
    )
    return truth, problem


class TestSimpleGravity:
    def test_total_traffic_preserved(self, triangle_network, triangle_routing, triangle_traffic):
        problem = EstimationProblem(
            routing=triangle_routing,
            link_loads=triangle_routing.link_loads(triangle_traffic.vector),
            origin_totals=triangle_traffic.origin_totals(),
            destination_totals=triangle_traffic.destination_totals(),
        )
        estimate = SimpleGravityEstimator().estimate(problem).estimate
        assert estimate.total == pytest.approx(triangle_traffic.total, rel=1e-9)

    def test_requires_edge_totals(self, triangle_routing):
        problem = EstimationProblem(
            routing=triangle_routing, link_loads=np.ones(triangle_routing.num_links)
        )
        with pytest.raises(EstimationError):
            SimpleGravityEstimator().estimate(problem)

    def test_fanout_identity(self, triangle_network, triangle_routing, triangle_traffic):
        """The simple gravity model is the fanout model alpha_nm = tx(m) / sum tx."""
        problem = EstimationProblem(
            routing=triangle_routing,
            link_loads=triangle_routing.link_loads(triangle_traffic.vector),
            origin_totals=triangle_traffic.origin_totals(),
            destination_totals=triangle_traffic.destination_totals(),
        )
        estimate = SimpleGravityEstimator().estimate(problem).estimate
        exits = triangle_traffic.destination_totals()
        fanouts = estimate.fanouts()
        for pair in estimate.pairs:
            other_exits = sum(v for name, v in exits.items() if name != pair.origin)
            expected = exits[pair.destination] / other_exits
            assert fanouts[pair] == pytest.approx(expected, rel=1e-9)

    def test_gravity_vector_matches_estimator(self, triangle_network, triangle_routing, triangle_traffic):
        problem = EstimationProblem(
            routing=triangle_routing,
            link_loads=triangle_routing.link_loads(triangle_traffic.vector),
            origin_totals=triangle_traffic.origin_totals(),
            destination_totals=triangle_traffic.destination_totals(),
        )
        assert np.allclose(
            gravity_vector(problem), SimpleGravityEstimator().estimate(problem).vector
        )


class TestGeneralizedGravity:
    def build_peering_network(self) -> Network:
        network = Network("peering")
        network.add_node(Node(name="A", role=NodeRole.ACCESS))
        network.add_node(Node(name="B", role=NodeRole.PEERING))
        network.add_node(Node(name="C", role=NodeRole.PEERING))
        for a, b in (("A", "B"), ("B", "C"), ("A", "C")):
            network.add_bidirectional_link(Link(source=a, target=b))
        return network

    def test_peer_to_peer_demands_zeroed(self):
        network = self.build_peering_network()
        routing = build_routing_matrix(network)
        traffic = TrafficMatrix.from_network(
            network, {pair: 10.0 for pair in network.node_pairs()}
        )
        problem = EstimationProblem(
            routing=routing,
            link_loads=routing.link_loads(traffic.vector),
            origin_totals=traffic.origin_totals(),
            destination_totals=traffic.destination_totals(),
        )
        estimate = GeneralizedGravityEstimator(network=network).estimate(problem).estimate
        assert estimate.demand(NodePair("B", "C")) == 0.0
        assert estimate.demand(NodePair("C", "B")) == 0.0
        assert estimate.demand(NodePair("A", "B")) > 0.0

    def test_explicit_peering_set(self):
        network = self.build_peering_network()
        routing = build_routing_matrix(network)
        traffic = TrafficMatrix.from_network(network, {pair: 5.0 for pair in network.node_pairs()})
        problem = EstimationProblem(
            routing=routing,
            link_loads=routing.link_loads(traffic.vector),
            origin_totals=traffic.origin_totals(),
            destination_totals=traffic.destination_totals(),
        )
        estimator = GeneralizedGravityEstimator(peering_nodes={"B", "C"})
        estimate = estimator.estimate(problem).estimate
        assert estimate.demand(NodePair("B", "C")) == 0.0

    def test_requires_network_or_peering_set(self):
        with pytest.raises(EstimationError):
            GeneralizedGravityEstimator()


class TestPriors:
    def test_uniform_prior_spreads_total(self, small_snapshot_problem):
        prior = uniform_prior(small_snapshot_problem)
        assert prior.std() == pytest.approx(0.0)
        assert prior.sum() == pytest.approx(small_snapshot_problem.total_traffic(), rel=1e-6)

    def test_gravity_prior_matches_gravity_vector(self, small_snapshot_problem):
        assert np.allclose(
            gravity_prior(small_snapshot_problem), gravity_vector(small_snapshot_problem)
        )

    def test_wcb_prior_is_nonnegative_and_bounded(self, small_snapshot_problem, small_truth):
        prior = worst_case_bound_prior(small_snapshot_problem)
        assert np.all(prior >= 0)
        assert prior.sum() > 0
        # Midpoints can never exceed the total network traffic.
        assert prior.max() <= small_truth.total + 1e-6

    def test_make_prior_dispatch(self, small_snapshot_problem):
        assert np.allclose(
            make_prior(small_snapshot_problem, "uniform"), uniform_prior(small_snapshot_problem)
        )
        assert np.allclose(
            make_prior(small_snapshot_problem, "gravity"), gravity_prior(small_snapshot_problem)
        )
        with pytest.raises(EstimationError):
            make_prior(small_snapshot_problem, "oracle")
