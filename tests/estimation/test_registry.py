"""Tests for the estimator registry (registration, lookup, errors)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import EstimationError
from repro.estimation import (
    BayesianEstimator,
    Estimator,
    SimpleGravityEstimator,
    VardiEstimator,
    available_estimators,
    get_estimator,
)
from repro.estimation.registry import register


class TestAvailability:
    def test_every_paper_method_is_registered(self):
        names = available_estimators()
        assert {
            "gravity",
            "generalized-gravity",
            "kruithof",
            "kl-projection",
            "entropy",
            "bayesian",
            "vardi",
            "cao",
            "fanout",
            "worst-case-bounds",
            "tomogravity",
        } <= set(names)

    def test_names_are_sorted_and_unique(self):
        names = available_estimators()
        assert list(names) == sorted(names)
        assert len(set(names)) == len(names)


class TestLookup:
    def test_lookup_returns_fresh_instances(self):
        first = get_estimator("gravity")
        second = get_estimator("gravity")
        assert isinstance(first, SimpleGravityEstimator)
        assert first is not second

    def test_parameters_are_forwarded(self):
        estimator = get_estimator("bayesian", regularization=42.0, prior="uniform")
        assert isinstance(estimator, BayesianEstimator)
        assert estimator.regularization == 42.0
        assert estimator.prior == "uniform"

    def test_invalid_parameters_surface_the_estimator_error(self):
        with pytest.raises(EstimationError):
            get_estimator("vardi", poisson_weight=7.0)

    def test_unknown_name_raises_with_available_list(self):
        with pytest.raises(EstimationError, match="unknown estimator"):
            get_estimator("no-such-method")

    def test_registry_instance_estimates_like_direct_construction(
        self, small_snapshot_problem
    ):
        from_registry = get_estimator("gravity").estimate(small_snapshot_problem)
        direct = SimpleGravityEstimator().estimate(small_snapshot_problem)
        assert np.allclose(from_registry.vector, direct.vector)


class TestRegistration:
    def test_duplicate_name_rejected(self):
        with pytest.raises(EstimationError, match="already registered"):

            @register("gravity")
            class Impostor(Estimator):  # pragma: no cover - never instantiated
                name = "gravity"

                def estimate(self, problem):
                    raise NotImplementedError

    def test_reregistering_same_class_is_idempotent(self):
        register("vardi")(VardiEstimator)
        assert "vardi" in available_estimators()

    def test_non_estimator_rejected(self):
        with pytest.raises(EstimationError, match="Estimator subclasses"):
            register("not-an-estimator")(dict)

    def test_nameless_class_rejected(self):
        class Nameless(Estimator):  # pragma: no cover - never instantiated
            name = ""

            def estimate(self, problem):
                raise NotImplementedError

        with pytest.raises(EstimationError, match="no usable registry name"):
            register()(Nameless)
