"""Dense-vs-sparse estimator parity for every registered method.

The sparse fast paths (CSR operator products, column selection on the
backend, matrix-free solvers) must be performance knobs, not different
methods: on the same observables, every registered estimator has to
produce the same estimate on a sparse routing backend as on a dense one —
both through ``estimate`` and through the batched ``estimate_series``.

Closed-form and LP-exact methods agree essentially to machine precision;
iterative solvers (entropy, Bayesian, tomogravity, KL projection, Vardi)
agree to solver tolerance, since the two backends' products round
differently along the iteration.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.estimation.registry import available_estimators, get_estimator

#: Constructor arguments needed by methods that are not default-constructible.
METHOD_PARAMS = {"generalized-gravity": {"peering_nodes": set()}}

#: Relative tolerance per method; unlisted methods are exact paths.
METHOD_RTOL = {
    "bayesian": 1e-5,
    "entropy": 1e-3,
    "tomogravity": 1e-3,
    "kl-projection": 1e-4,
    "vardi": 1e-3,
    "cao": 1e-4,
    "sharded": 2e-3,
    "supervised": 1e-3,  # default primary is tomogravity
}
DEFAULT_RTOL = 1e-9

SCENARIOS = ("europe", "abilene")
WINDOW = 8


@pytest.fixture(scope="module")
def scenario_problems():
    """Per-scenario (dense problem, sparse problem) pairs with shared data."""
    from repro.datasets import abilene_scenario, europe_scenario

    builders = {"europe": europe_scenario, "abilene": abilene_scenario}
    problems = {}
    for name in SCENARIOS:
        scenario = builders[name]()
        base = scenario.series_problem(window_length=WINDOW)
        problems[name] = {
            backend: dataclasses.replace(
                base, routing=scenario.routing.with_backend(backend)
            )
            for backend in ("dense", "sparse")
        }
    return problems


def make_estimator(name):
    return get_estimator(name, **METHOD_PARAMS.get(name, {}))


def assert_close(name, dense_values, sparse_values):
    rtol = METHOD_RTOL.get(name, DEFAULT_RTOL)
    scale = max(float(np.abs(dense_values).max(initial=0.0)), 1.0)
    np.testing.assert_allclose(
        dense_values, sparse_values, rtol=rtol, atol=rtol * scale
    )


@pytest.mark.parametrize("scenario_name", SCENARIOS)
@pytest.mark.parametrize("method", available_estimators())
def test_estimate_matches_across_backends(scenario_problems, scenario_name, method):
    problems = scenario_problems[scenario_name]
    dense = make_estimator(method).estimate(problems["dense"])
    sparse = make_estimator(method).estimate(problems["sparse"])
    assert_close(method, dense.vector, sparse.vector)


@pytest.mark.parametrize("scenario_name", SCENARIOS)
@pytest.mark.parametrize("method", available_estimators())
def test_estimate_series_matches_across_backends(
    scenario_problems, scenario_name, method
):
    problems = scenario_problems[scenario_name]
    dense = make_estimator(method).estimate_series(problems["dense"])
    sparse = make_estimator(method).estimate_series(problems["sparse"])
    assert dense.estimates.shape == sparse.estimates.shape == (
        WINDOW,
        problems["dense"].num_pairs,
    )
    assert_close(method, dense.estimates, sparse.estimates)
