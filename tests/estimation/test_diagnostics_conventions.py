"""Diagnostics naming conventions across every registered estimator.

The telemetry layer folds scalar diagnostics into span attributes under
canonical names — ``iterations``, ``converged``, ``residual_norm`` — so
traces and summary rollups compare methods on one vocabulary.  The
in-tree estimators must emit those canonical keys directly; the historic
spellings (``solver_iterations``, ``solver_converged``,
``link_residual``) are banned (they survive only as read-time aliases
for external estimators, see ``_DIAGNOSTIC_ALIASES``).

The test is total over :func:`available_estimators`: registering a new
method without declaring its diagnostics contract here fails the suite.
"""

from __future__ import annotations

import warnings

import pytest

from repro.estimation.registry import available_estimators, get_estimator

FORBIDDEN_ALIASES = ("solver_iterations", "solver_converged", "link_residual")

#: name -> (constructor params, problem kind, required canonical keys)
CONVENTIONS = {
    "bayesian": ({}, "snapshot", {"iterations", "converged", "residual_norm"}),
    "cao": ({}, "series", {"iterations"}),
    "entropy": ({}, "snapshot", {"iterations", "converged", "residual_norm"}),
    "fanout": ({}, "series", {"residual_norm"}),
    "generalized-gravity": ({"peering_nodes": set()}, "snapshot", set()),
    "gravity": ({}, "snapshot", set()),
    "kl-projection": ({}, "snapshot", {"iterations", "converged"}),
    "kruithof": ({}, "snapshot", {"iterations", "converged"}),
    "sharded": ({"base": "gravity", "num_regions": 2}, "snapshot", set()),
    "supervised": (
        {"primary": "tomogravity"},
        "snapshot",
        {"iterations", "converged", "residual_norm"},
    ),
    "tomogravity": ({}, "snapshot", {"iterations", "converged", "residual_norm"}),
    "vardi": ({}, "series", {"iterations", "converged"}),
    "worst-case-bounds": ({}, "snapshot", set()),
}


def test_every_registered_estimator_has_a_declared_convention():
    assert set(available_estimators()) == set(CONVENTIONS)


@pytest.mark.parametrize("name", sorted(CONVENTIONS))
def test_canonical_diagnostics_keys(name, small_scenario_session):
    params, kind, required = CONVENTIONS[name]
    estimator = get_estimator(name, **params)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        if kind == "series":
            result = estimator.estimate_series(
                small_scenario_session.series_problem()
            )
        else:
            result = estimator.estimate(small_scenario_session.snapshot_problem())
    diagnostics = result.diagnostics
    for alias in FORBIDDEN_ALIASES:
        assert alias not in diagnostics, (
            f"{name} emits legacy diagnostics key {alias!r}; use the "
            f"canonical spelling"
        )
    for key in required:
        assert key in diagnostics, f"{name} is missing canonical key {key!r}"
    if "converged" in diagnostics:
        assert isinstance(diagnostics["converged"], bool)
    if "iterations" in diagnostics:
        assert float(diagnostics["iterations"]) == int(diagnostics["iterations"])
