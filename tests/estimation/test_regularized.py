"""Tests for the Bayesian, entropy, Kruithof/KL-projection and tomogravity estimators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import EstimationError
from repro.estimation import (
    BayesianEstimator,
    EntropyEstimator,
    EstimationProblem,
    KLProjectionEstimator,
    KruithofEstimator,
    TomogravityEstimator,
    sweep_regularization,
)
from repro.evaluation import mean_relative_error
from repro.routing import build_routing_matrix
from repro.topology import NodePair
from repro.traffic import TrafficMatrix


@pytest.fixture
def line_problem(line_network):
    """An under-determined problem on the line network with known truth."""
    routing = build_routing_matrix(line_network)
    demands = {
        NodePair("A", "D"): 50.0,
        NodePair("A", "C"): 20.0,
        NodePair("B", "D"): 10.0,
        NodePair("B", "C"): 5.0,
        NodePair("D", "A"): 30.0,
        NodePair("C", "A"): 15.0,
        NodePair("A", "B"): 8.0,
        NodePair("B", "A"): 4.0,
        NodePair("C", "D"): 6.0,
        NodePair("D", "C"): 3.0,
        NodePair("C", "B"): 2.0,
        NodePair("D", "B"): 1.0,
    }
    truth = TrafficMatrix.from_network(line_network, demands)
    problem = EstimationProblem(
        routing=routing,
        link_loads=routing.link_loads(truth.vector),
        origin_totals=truth.origin_totals(),
        destination_totals=truth.destination_totals(),
    )
    return truth, problem


class TestBayesian:
    def test_large_regularization_fits_link_loads(self, line_problem):
        truth, problem = line_problem
        result = BayesianEstimator(regularization=1e6, prior="gravity").estimate(problem)
        residual = np.linalg.norm(problem.routing.link_loads(result.vector) - problem.snapshot)
        assert residual < 1e-3 * np.linalg.norm(problem.snapshot)

    def test_small_regularization_returns_prior(self, line_problem):
        truth, problem = line_problem
        prior = np.full(problem.num_pairs, 5.0)
        result = BayesianEstimator(regularization=1e-8, prior=prior).estimate(problem)
        assert np.allclose(result.vector, prior, rtol=1e-3, atol=1e-3)

    def test_exact_recovery_when_prior_is_truth(self, line_problem):
        truth, problem = line_problem
        result = BayesianEstimator(regularization=1.0, prior=truth.vector).estimate(problem)
        assert np.allclose(result.vector, truth.vector, atol=1e-4)

    def test_regularization_must_be_positive(self):
        with pytest.raises(EstimationError):
            BayesianEstimator(regularization=0.0)

    def test_prior_shape_checked(self, line_problem):
        _, problem = line_problem
        with pytest.raises(EstimationError):
            BayesianEstimator(prior=np.ones(3)).estimate(problem)
        with pytest.raises(EstimationError):
            BayesianEstimator(prior=-np.ones(problem.num_pairs)).estimate(problem)

    def test_diagnostics_reported(self, line_problem):
        _, problem = line_problem
        result = BayesianEstimator(regularization=10.0).estimate(problem)
        assert "residual_norm" in result.diagnostics
        assert "prior_distance" in result.diagnostics


class TestEntropy:
    def test_large_regularization_fits_link_loads(self, line_problem):
        truth, problem = line_problem
        result = EntropyEstimator(regularization=1e5, prior="gravity").estimate(problem)
        residual = np.linalg.norm(problem.routing.link_loads(result.vector) - problem.snapshot)
        assert residual < 1e-2 * np.linalg.norm(problem.snapshot)

    def test_small_regularization_returns_prior(self, line_problem):
        _, problem = line_problem
        prior = np.full(problem.num_pairs, 7.0)
        result = EntropyEstimator(regularization=1e-8, prior=prior).estimate(problem)
        assert np.allclose(result.vector, prior, rtol=1e-2)

    def test_zero_prior_entries_stay_zero(self, line_problem):
        _, problem = line_problem
        prior = np.full(problem.num_pairs, 5.0)
        prior[0] = 0.0
        result = EntropyEstimator(regularization=100.0, prior=prior).estimate(problem)
        assert result.vector[0] == 0.0

    def test_better_than_gravity_prior_alone(self, small_snapshot_problem, small_truth):
        from repro.estimation import SimpleGravityEstimator

        gravity_mre = mean_relative_error(
            SimpleGravityEstimator().estimate(small_snapshot_problem).estimate, small_truth
        )
        entropy_mre = mean_relative_error(
            EntropyEstimator(regularization=1000.0).estimate(small_snapshot_problem).estimate,
            small_truth,
        )
        assert entropy_mre < gravity_mre

    def test_parameter_validation(self):
        with pytest.raises(EstimationError):
            EntropyEstimator(regularization=-1.0)
        with pytest.raises(EstimationError):
            EntropyEstimator(max_iterations=0)


class TestKruithof:
    def test_matches_edge_totals(self, line_problem):
        truth, problem = line_problem
        result = KruithofEstimator(prior="uniform").estimate(problem)
        estimate = result.estimate
        for origin, total in truth.origin_totals().items():
            assert estimate.origin_totals()[origin] == pytest.approx(total, rel=1e-4)
        for destination, total in truth.destination_totals().items():
            assert estimate.destination_totals()[destination] == pytest.approx(total, rel=1e-4)

    def test_requires_edge_totals(self, triangle_routing):
        problem = EstimationProblem(
            routing=triangle_routing, link_loads=np.ones(triangle_routing.num_links)
        )
        with pytest.raises(EstimationError):
            KruithofEstimator().estimate(problem)


class TestKLProjection:
    def test_satisfies_link_constraints(self, line_problem):
        truth, problem = line_problem
        result = KLProjectionEstimator(prior="gravity").estimate(problem)
        assert np.allclose(
            problem.routing.link_loads(result.vector), problem.snapshot, rtol=1e-3, atol=1e-3
        )

    def test_exact_prior_is_fixed_point(self, line_problem):
        truth, problem = line_problem
        result = KLProjectionEstimator(prior=truth.vector).estimate(problem)
        assert np.allclose(result.vector, truth.vector, rtol=1e-6)


class TestTomogravity:
    def test_flavours(self, small_snapshot_problem):
        entropy = TomogravityEstimator(flavour="entropy").estimate(small_snapshot_problem)
        bayes = TomogravityEstimator(flavour="bayesian").estimate(small_snapshot_problem)
        assert entropy.method == "tomogravity"
        assert bayes.diagnostics["flavour"] == "bayesian"
        with pytest.raises(EstimationError):
            TomogravityEstimator(flavour="magic")

    def test_sweep_returns_one_result_per_value(self, small_snapshot_problem):
        sweep = sweep_regularization(small_snapshot_problem, [0.1, 10.0, 1000.0])
        assert [value for value, _ in sweep] == [0.1, 10.0, 1000.0]
        with pytest.raises(EstimationError):
            sweep_regularization(small_snapshot_problem, [])

    def test_matches_underlying_entropy_estimator(self, small_snapshot_problem):
        tomo = TomogravityEstimator(flavour="entropy", regularization=500.0).estimate(
            small_snapshot_problem
        )
        entropy = EntropyEstimator(regularization=500.0, prior="gravity").estimate(
            small_snapshot_problem
        )
        assert np.allclose(tomo.vector, entropy.vector)

    @pytest.mark.parametrize("flavour", ["entropy", "bayesian"])
    def test_warm_start_is_forwarded_to_inner_estimator(self, small_snapshot_problem, flavour):
        # The registry-contracts audit found tomogravity advertised as
        # warm-startable (README batched-series table) without forwarding
        # set_warm_start to the wrapped estimator — the generic series
        # loop's getattr probe found nothing and silently ran cold.  The
        # forwarding must hand the exact vector to the inner estimator.
        estimator = TomogravityEstimator(flavour=flavour)
        vector = np.full(len(small_snapshot_problem.pairs), 3.0)
        estimator.set_warm_start(vector)
        inner_start = estimator._inner._warm_start
        assert inner_start is not None
        np.testing.assert_array_equal(inner_start, vector)

    def test_warm_start_does_not_change_the_estimate(self, small_snapshot_problem):
        # Both flavours solve strictly convex programs: the warm start can
        # only change the iteration count, never the minimiser.
        cold = TomogravityEstimator(flavour="bayesian").estimate(small_snapshot_problem)
        warm_estimator = TomogravityEstimator(flavour="bayesian")
        warm_estimator.set_warm_start(cold.vector)
        warm = warm_estimator.estimate(small_snapshot_problem)
        np.testing.assert_allclose(warm.vector, cold.vector, atol=1e-6)
