"""Sparse hot paths never densify; shared workspace pays setup once.

Two guarantees of the large-topology engine:

* the hot estimators (gravity, Kruithof, KL projection, entropy, Bayesian,
  tomogravity) run on a sparse routing backend without ever materialising
  the dense ``(links, pairs)`` view — enforced here with a backend whose
  ``toarray`` raises;
* a problem's expensive setup (the gravity prior, pair-position index
  arrays) is computed once per problem and shared across every method of a
  sweep, not rebuilt per estimator.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.estimation.base import EstimationProblem
from repro.estimation.registry import get_estimator
from repro.routing.backends import SparseBackend
from repro.routing.routing_matrix import RoutingMatrix

#: Methods required to stay CSR end to end on sparse backends.  The
#: remaining registered methods (vardi, cao, fanout, worst-case-bounds,
#: generalized-gravity) are permitted to use the dense view.
NO_DENSIFY_METHODS = (
    "gravity",
    "kruithof",
    "kl-projection",
    "entropy",
    "bayesian",
    "tomogravity",
)


class GuardedSparseBackend(SparseBackend):
    """A CSR backend that fails the test on any densification."""

    def toarray(self) -> np.ndarray:
        raise AssertionError("toarray() called: a sparse hot path densified")


@pytest.fixture(scope="module")
def scenario():
    from repro.datasets import europe_scenario

    return europe_scenario()


@pytest.fixture(scope="module")
def guarded_problems(scenario):
    """Snapshot and series problems whose routing cannot densify."""
    csr = scenario.routing.with_backend("sparse").backend.raw
    guarded = RoutingMatrix(
        GuardedSparseBackend(csr),
        scenario.routing.link_names,
        scenario.routing.pairs,
        network=scenario.network,
    )
    snapshot_base = scenario.snapshot_problem()
    series_base = scenario.series_problem(window_length=5)
    import dataclasses

    return (
        dataclasses.replace(snapshot_base, routing=guarded),
        dataclasses.replace(series_base, routing=guarded),
    )


class TestNoDensification:
    @pytest.mark.parametrize("method", NO_DENSIFY_METHODS)
    def test_estimate_stays_sparse(self, guarded_problems, method):
        snapshot_problem, _ = guarded_problems
        result = get_estimator(method).estimate(snapshot_problem)
        assert result.vector.shape == (snapshot_problem.num_pairs,)
        assert np.all(result.vector >= 0)

    @pytest.mark.parametrize("method", NO_DENSIFY_METHODS)
    def test_estimate_series_stays_sparse(self, guarded_problems, method):
        _, series_problem = guarded_problems
        result = get_estimator(method).estimate_series(series_problem)
        assert result.estimates.shape == (5, series_problem.num_pairs)

    def test_guard_actually_guards(self, guarded_problems):
        snapshot_problem, _ = guarded_problems
        with pytest.raises(AssertionError, match="densified"):
            snapshot_problem.routing.matrix


class TestSharedWorkspace:
    def test_gravity_prior_built_once_across_methods(self, scenario, monkeypatch):
        import repro.estimation.priors as priors_module

        problem = scenario.snapshot_problem()
        calls = {"count": 0}
        original = priors_module.gravity_prior

        def counting(problem_arg):
            calls["count"] += 1
            return original(problem_arg)

        monkeypatch.setattr(priors_module, "gravity_prior", counting)
        for method in ("entropy", "bayesian", "tomogravity"):
            get_estimator(method).estimate(problem)
        assert calls["count"] == 1

    def test_prior_cached_and_read_only(self, scenario):
        from repro.estimation.priors import make_prior

        problem = scenario.snapshot_problem()
        first = make_prior(problem, "gravity")
        second = make_prior(problem, "gravity")
        assert first is second
        assert not first.flags.writeable
        with pytest.raises(ValueError):
            first[0] = 1.0

    def test_pair_positions_cached(self, scenario):
        problem = scenario.snapshot_problem()
        assert problem.pair_positions() is problem.pair_positions()
        origins, destinations, origin_cols, destination_cols = problem.pair_positions()
        assert origins == problem.origin_order()
        assert destinations == problem.destination_order()
        for position, pair in enumerate(problem.pairs):
            assert origins[origin_cols[position]] == pair.origin
            assert destinations[destination_cols[position]] == pair.destination

    def test_gravity_series_cached_across_methods(self, scenario):
        from repro.estimation.gravity import gravity_vector_series

        problem = scenario.series_problem(window_length=4)
        first = gravity_vector_series(problem)
        second = gravity_vector_series(problem)
        assert first is second
        assert not first.flags.writeable
        # Exclusions bypass the cache and return a writable copy.
        excluded = {problem.pairs[0]}
        with_exclusions = gravity_vector_series(problem, excluded_pairs=excluded)
        assert with_exclusions is not first
        assert with_exclusions[:, 0] == pytest.approx(0.0)

    def test_workspace_is_per_problem(self, scenario):
        from repro.estimation.priors import make_prior

        first_problem = scenario.snapshot_problem()
        second_problem = scenario.snapshot_problem()
        assert make_prior(first_problem, "gravity") is not make_prior(
            second_problem, "gravity"
        )
