"""Tests for worst-case bounds and the direct-measurement combination."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import EstimationError
from repro.estimation import (
    DemandBounds,
    DirectMeasurementCombiner,
    EntropyEstimator,
    EstimationProblem,
    SimpleGravityEstimator,
    WorstCaseBoundsEstimator,
    greedy_measurement_selection,
    largest_demand_selection,
    reduce_problem,
    select_large_pairs,
    worst_case_bounds,
)
from repro.evaluation import mean_relative_error
from repro.routing import build_routing_matrix
from repro.topology import NodePair
from repro.traffic import TrafficMatrix


@pytest.fixture
def line_setup(line_network):
    routing = build_routing_matrix(line_network)
    demands = {
        NodePair("A", "D"): 40.0,
        NodePair("A", "B"): 10.0,
        NodePair("B", "D"): 20.0,
        NodePair("D", "A"): 25.0,
        NodePair("C", "A"): 5.0,
    }
    truth = TrafficMatrix.from_network(line_network, demands)
    problem = EstimationProblem(
        routing=routing,
        link_loads=routing.link_loads(truth.vector),
        origin_totals=truth.origin_totals(),
        destination_totals=truth.destination_totals(),
    )
    return truth, problem


class TestDemandBounds:
    def test_midpoint_width_membership(self):
        bounds = DemandBounds(pair=NodePair("A", "B"), lower=2.0, upper=6.0)
        assert bounds.midpoint == 4.0
        assert bounds.width == 4.0
        assert bounds.contains(3.0)
        assert not bounds.contains(7.0)
        assert not bounds.is_exact()
        assert DemandBounds(pair=NodePair("A", "B"), lower=3.0, upper=3.0).is_exact()

    def test_invalid_bounds_rejected(self):
        with pytest.raises(EstimationError):
            DemandBounds(pair=NodePair("A", "B"), lower=-1.0, upper=1.0)
        with pytest.raises(EstimationError):
            DemandBounds(pair=NodePair("A", "B"), lower=5.0, upper=1.0)


class TestWorstCaseBounds:
    def test_bounds_contain_truth(self, line_setup):
        truth, problem = line_setup
        for bounds in worst_case_bounds(problem):
            assert bounds.contains(truth.demand(bounds.pair), tolerance=1e-4)

    def test_bounds_without_edge_totals_are_looser(self, line_setup):
        truth, problem = line_setup
        tight = worst_case_bounds(problem, use_edge_totals=True)
        loose = worst_case_bounds(problem, use_edge_totals=False)
        tight_width = sum(b.width for b in tight)
        loose_width = sum(b.width for b in loose)
        assert tight_width <= loose_width + 1e-6

    def test_subset_of_pairs(self, line_setup):
        truth, problem = line_setup
        subset = [NodePair("A", "D"), NodePair("B", "D")]
        bounds = worst_case_bounds(problem, pairs=subset)
        assert [b.pair for b in bounds] == subset

    def test_estimator_reports_bounds_in_diagnostics(self, line_setup):
        truth, problem = line_setup
        result = WorstCaseBoundsEstimator().estimate(problem)
        assert result.diagnostics["num_bounded"] == problem.num_pairs
        lower = result.diagnostics["lower_bounds"]
        upper = result.diagnostics["upper_bounds"]
        assert np.all(lower <= upper + 1e-9)
        assert np.allclose(result.vector, 0.5 * (lower + upper))

    def test_midpoint_prior_reasonable(self, line_setup):
        truth, problem = line_setup
        result = WorstCaseBoundsEstimator().estimate(problem)
        assert mean_relative_error(result.estimate, truth) < 1.0

    def test_parallel_bounds_match_serial(self, line_setup):
        truth, problem = line_setup
        serial = worst_case_bounds(problem, n_jobs=1)
        parallel = worst_case_bounds(problem, n_jobs=2)
        assert [b.pair for b in serial] == [b.pair for b in parallel]
        for a, b in zip(serial, parallel):
            assert a.lower == pytest.approx(b.lower, abs=1e-8)
            assert a.upper == pytest.approx(b.upper, abs=1e-8)


class TestUnboundedPairFallback:
    def test_unselected_pairs_get_even_residual_split(self, line_setup):
        truth, problem = line_setup
        subset = [NodePair("A", "D"), NodePair("B", "D")]
        result = WorstCaseBoundsEstimator(pairs=subset).estimate(problem)
        bounded = {problem.pairs.index(pair) for pair in subset}
        unbounded = [idx for idx in range(problem.num_pairs) if idx not in bounded]
        assert result.diagnostics["num_fallback"] == len(unbounded)
        share = result.diagnostics["fallback_share"]
        assert share > 0
        for idx in unbounded:
            assert result.vector[idx] == pytest.approx(share)
            # No bound was computed for the fallback pairs.
            assert result.diagnostics["lower_bounds"][idx] == 0.0
            assert np.isnan(result.diagnostics["upper_bounds"][idx])

    def test_fallback_share_is_residual_over_unbounded(self, line_setup):
        truth, problem = line_setup
        subset = [NodePair("A", "D")]
        result = WorstCaseBoundsEstimator(pairs=subset).estimate(problem)
        midpoint_total = sum(
            result.vector[problem.pairs.index(pair)] for pair in subset
        )
        residual = max(0.0, problem.total_traffic() - midpoint_total)
        expected = residual / (problem.num_pairs - len(subset))
        assert result.diagnostics["fallback_share"] == pytest.approx(expected)

    def test_full_selection_has_no_fallback(self, line_setup):
        truth, problem = line_setup
        result = WorstCaseBoundsEstimator().estimate(problem)
        assert result.diagnostics["num_fallback"] == 0
        assert result.diagnostics["fallback_share"] == 0.0


class TestLargeDemandSelection:
    def test_select_large_pairs_defaults_to_all(self, line_setup):
        truth, problem = line_setup
        assert select_large_pairs(problem) == list(problem.pairs)

    def test_max_pairs_truncates_by_combinatorial_cap(self, line_setup):
        truth, problem = line_setup
        selected = select_large_pairs(problem, max_pairs=3)
        assert len(selected) == 3
        # The selected pairs must include the largest demand (A->D, 40.0).
        assert NodePair("A", "D") in selected

    def test_top_fraction(self, line_setup):
        truth, problem = line_setup
        selected = select_large_pairs(problem, top_fraction=0.5)
        assert len(selected) == max(1, round(0.5 * problem.num_pairs))

    def test_estimator_subset_selection_runs(self, line_setup):
        truth, problem = line_setup
        result = WorstCaseBoundsEstimator(max_pairs=3).estimate(problem)
        assert result.diagnostics["num_bounded"] == 3
        assert result.diagnostics["num_fallback"] == problem.num_pairs - 3
        # Point estimate stays sane with the subset + fallback combination.
        assert mean_relative_error(result.estimate, truth) < 2.0

    def test_invalid_selection_parameters(self, line_setup):
        with pytest.raises(EstimationError):
            WorstCaseBoundsEstimator(max_pairs=0)
        with pytest.raises(EstimationError):
            WorstCaseBoundsEstimator(top_fraction=0.0)
        with pytest.raises(EstimationError):
            WorstCaseBoundsEstimator(top_fraction=1.5)


class TestReduceProblem:
    def test_measured_contribution_removed(self, line_setup):
        truth, problem = line_setup
        measured = {NodePair("A", "D"): truth.demand(NodePair("A", "D"))}
        reduced = reduce_problem(problem, measured)
        assert reduced.num_pairs == problem.num_pairs - 1
        assert NodePair("A", "D") not in reduced.pairs
        # The remaining system stays consistent with the unmeasured demands.
        remaining = np.array(
            [truth.demand(pair) for pair in reduced.pairs]
        )
        assert np.allclose(reduced.routing.link_loads(remaining), reduced.link_loads, atol=1e-9)

    def test_edge_totals_adjusted(self, line_setup):
        truth, problem = line_setup
        pair = NodePair("A", "D")
        reduced = reduce_problem(problem, {pair: truth.demand(pair)})
        assert reduced.origin_totals["A"] == pytest.approx(
            problem.origin_totals["A"] - truth.demand(pair)
        )
        assert reduced.destination_totals["D"] == pytest.approx(
            problem.destination_totals["D"] - truth.demand(pair)
        )

    def test_empty_measurement_returns_same_problem(self, line_setup):
        _, problem = line_setup
        assert reduce_problem(problem, {}) is problem

    def test_unknown_pair_rejected(self, line_setup):
        _, problem = line_setup
        with pytest.raises(EstimationError):
            reduce_problem(problem, {NodePair("X", "Y"): 1.0})

    def test_negative_measurement_rejected(self, line_setup):
        _, problem = line_setup
        with pytest.raises(EstimationError):
            reduce_problem(problem, {NodePair("A", "D"): -1.0})


class TestDirectMeasurementCombiner:
    def test_measured_values_pass_through(self, line_setup):
        truth, problem = line_setup
        pair = NodePair("A", "D")
        combiner = DirectMeasurementCombiner(
            EntropyEstimator(regularization=1000.0), {pair: truth.demand(pair)}
        )
        result = combiner.estimate(problem)
        assert result.estimate.demand(pair) == pytest.approx(truth.demand(pair))
        assert result.method == "entropy+direct"

    def test_measuring_all_pairs_returns_truth(self, line_setup):
        truth, problem = line_setup
        combiner = DirectMeasurementCombiner(SimpleGravityEstimator(), truth.to_mapping())
        result = combiner.estimate(problem)
        assert np.allclose(result.vector, truth.vector)

    def test_error_decreases_with_measurements(self, line_setup):
        truth, problem = line_setup
        estimator = EntropyEstimator(regularization=1000.0)
        baseline = mean_relative_error(estimator.estimate(problem).estimate, truth)

        def metric(estimate):
            return mean_relative_error(estimate, truth)

        history = greedy_measurement_selection(problem, truth, estimator, metric, 2)
        assert len(history) == 2
        assert history[0][1] <= baseline + 1e-9
        assert history[1][1] <= history[0][1] + 1e-9

    def test_largest_demand_selection_returns_history(self, line_setup):
        truth, problem = line_setup
        estimator = EntropyEstimator(regularization=1000.0)

        def metric(estimate):
            return mean_relative_error(estimate, truth)

        history = largest_demand_selection(problem, truth, estimator, metric, 3)
        assert len(history) == 3
        # The strategy measures the largest estimated demands first.
        assert history[0][0] in truth.top_demands(3)

    def test_selection_validation(self, line_setup):
        truth, problem = line_setup
        estimator = EntropyEstimator(regularization=1000.0)
        with pytest.raises(EstimationError):
            greedy_measurement_selection(problem, truth, estimator, lambda e: 0.0, 0)
        with pytest.raises(EstimationError):
            largest_demand_selection(problem, truth, estimator, lambda e: 0.0, 0)
