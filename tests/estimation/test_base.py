"""Tests for EstimationProblem / EstimationResult / Estimator plumbing."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import EstimationError
from repro.estimation import EstimationProblem, Estimator
from repro.routing import build_routing_matrix
from repro.topology import NodePair
from repro.traffic import TrafficMatrix


class TestEstimationProblem:
    def test_snapshot_problem_basics(self, line_network):
        routing = build_routing_matrix(line_network)
        traffic = TrafficMatrix.from_network(line_network, {NodePair("A", "D"): 10.0})
        loads = routing.link_loads(traffic.vector)
        problem = EstimationProblem(routing=routing, link_loads=loads)
        assert problem.num_pairs == routing.num_pairs
        assert problem.num_snapshots == 1
        assert np.allclose(problem.snapshot, loads)
        with pytest.raises(EstimationError):
            _ = problem.series

    def test_series_problem_defaults_snapshot_to_mean(self, line_network):
        routing = build_routing_matrix(line_network)
        series = np.stack([np.ones(routing.num_links), 3 * np.ones(routing.num_links)])
        problem = EstimationProblem(routing=routing, link_load_series=series)
        assert problem.num_snapshots == 2
        assert np.allclose(problem.snapshot, 2.0)

    def test_requires_some_load_information(self, triangle_routing):
        with pytest.raises(EstimationError):
            EstimationProblem(routing=triangle_routing)

    def test_shape_validation(self, triangle_routing):
        with pytest.raises(EstimationError):
            EstimationProblem(routing=triangle_routing, link_loads=np.ones(3))
        with pytest.raises(EstimationError):
            EstimationProblem(routing=triangle_routing, link_load_series=np.ones((2, 3)))
        with pytest.raises(EstimationError):
            EstimationProblem(
                routing=triangle_routing,
                link_loads=np.ones(triangle_routing.num_links),
                origin_totals_series=np.ones((2, 3)),
            )

    def test_negative_loads_rejected(self, triangle_routing):
        with pytest.raises(EstimationError):
            EstimationProblem(
                routing=triangle_routing, link_loads=-np.ones(triangle_routing.num_links)
            )

    def test_total_traffic_from_origin_totals(self, triangle_routing):
        problem = EstimationProblem(
            routing=triangle_routing,
            link_loads=np.ones(triangle_routing.num_links),
            origin_totals={"A": 5.0, "B": 3.0, "C": 2.0},
        )
        assert problem.total_traffic() == pytest.approx(10.0)

    def test_total_traffic_fallback_uses_path_lengths(self, triangle_network, triangle_routing):
        traffic = TrafficMatrix.from_network(
            triangle_network, {NodePair("A", "B"): 6.0, NodePair("B", "C"): 4.0}
        )
        loads = triangle_routing.link_loads(traffic.vector)
        problem = EstimationProblem(routing=triangle_routing, link_loads=loads)
        # Every pair is a single hop in the triangle, so the fallback is exact.
        assert problem.total_traffic() == pytest.approx(10.0)

    def test_augmented_system_adds_total_rows(self, line_network):
        routing = build_routing_matrix(line_network)
        traffic = TrafficMatrix.from_network(
            line_network, {NodePair("A", "D"): 10.0, NodePair("D", "A"): 4.0}
        )
        problem = EstimationProblem(
            routing=routing,
            link_loads=routing.link_loads(traffic.vector),
            origin_totals=traffic.origin_totals(),
            destination_totals=traffic.destination_totals(),
        )
        matrix, rhs = problem.augmented_system()
        num_origins = len(set(p.origin for p in routing.pairs))
        num_destinations = len(set(p.destination for p in routing.pairs))
        assert matrix.shape[0] == routing.num_links + num_origins + num_destinations
        # The augmented system must be consistent with the true demands.
        assert np.allclose(matrix @ traffic.vector, rhs)

    def test_with_snapshot_replaces_loads(self, triangle_routing):
        problem = EstimationProblem(
            routing=triangle_routing, link_loads=np.ones(triangle_routing.num_links)
        )
        replaced = problem.with_snapshot(2 * np.ones(triangle_routing.num_links))
        assert np.allclose(replaced.snapshot, 2.0)
        assert np.allclose(problem.snapshot, 1.0)


class _ConstantEstimator(Estimator):
    name = "constant"

    def __init__(self, value: float, wrong_shape: bool = False) -> None:
        self.value = value
        self.wrong_shape = wrong_shape

    def estimate(self, problem):
        size = problem.num_pairs + (1 if self.wrong_shape else 0)
        return self._result(problem, np.full(size, self.value), note=1.0)


class TestEstimatorBase:
    def test_result_packaging(self, triangle_routing):
        problem = EstimationProblem(
            routing=triangle_routing, link_loads=np.ones(triangle_routing.num_links)
        )
        result = _ConstantEstimator(2.0)(problem)
        assert result.method == "constant"
        assert result.diagnostics == {"note": 1.0}
        assert np.allclose(result.vector, 2.0)
        assert result.residual_norm(problem) > 0

    def test_wrong_shape_rejected(self, triangle_routing):
        problem = EstimationProblem(
            routing=triangle_routing, link_loads=np.ones(triangle_routing.num_links)
        )
        with pytest.raises(EstimationError):
            _ConstantEstimator(1.0, wrong_shape=True).estimate(problem)

    def test_negative_estimates_are_clipped(self, triangle_routing):
        problem = EstimationProblem(
            routing=triangle_routing, link_loads=np.ones(triangle_routing.num_links)
        )
        result = _ConstantEstimator(-1.0).estimate(problem)
        assert np.all(result.vector == 0.0)
