"""Tests for the time-series estimators: Vardi, Cao and fanout estimation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import EstimationError
from repro.estimation import (
    CaoEstimator,
    EstimationProblem,
    FanoutEstimator,
    VardiEstimator,
    link_load_moments,
)
from repro.evaluation import mean_relative_error
from repro.measurement import link_load_series
from repro.routing import build_routing_matrix
from repro.topology import random_backbone
from repro.traffic import (
    ScalingLaw,
    SyntheticTrafficConfig,
    SyntheticTrafficModel,
    TrafficMatrix,
    base_demand_matrix,
    flat_profile,
    poisson_series,
)


@pytest.fixture(scope="module")
def poisson_setup():
    """A small network with a long Poisson series (Vardi's ideal conditions)."""
    network = random_backbone(5, avg_degree=3.0, seed=21)
    routing = build_routing_matrix(network)
    config = SyntheticTrafficConfig(total_traffic_mbps=60_000.0, gravity_distortion=0.8)
    mean_matrix = base_demand_matrix(network, config, seed=21)
    series = poisson_series(mean_matrix, 800, seed=22)
    loads = link_load_series(routing, series)
    return network, routing, mean_matrix, loads


class TestLinkLoadMoments:
    def test_moment_shapes(self, poisson_setup):
        _, routing, _, loads = poisson_setup
        mean, covariance = link_load_moments(loads[:100])
        assert mean.shape == (routing.num_links,)
        assert covariance.shape == (routing.num_links, routing.num_links)
        assert np.allclose(covariance, covariance.T)

    def test_needs_at_least_two_snapshots(self, poisson_setup):
        _, _, _, loads = poisson_setup
        with pytest.raises(EstimationError):
            link_load_moments(loads[:1])
        with pytest.raises(EstimationError):
            link_load_moments(loads[0])


class TestVardi:
    def test_parameter_validation(self):
        with pytest.raises(EstimationError):
            VardiEstimator(poisson_weight=2.0)
        with pytest.raises(EstimationError):
            VardiEstimator(poisson_weight=-0.1)

    def test_requires_series(self, triangle_routing):
        problem = EstimationProblem(
            routing=triangle_routing, link_loads=np.ones(triangle_routing.num_links)
        )
        with pytest.raises(EstimationError):
            VardiEstimator().estimate(problem)

    def test_accurate_on_long_poisson_series(self, poisson_setup):
        """With enough true-Poisson samples the moment matching works (Figure 12)."""
        _, routing, mean_matrix, loads = poisson_setup
        problem = EstimationProblem(routing=routing, link_load_series=loads)
        estimate = VardiEstimator(poisson_weight=1.0).estimate(problem).estimate
        assert mean_relative_error(estimate, mean_matrix) < 0.25

    def test_error_decreases_with_window_size(self, poisson_setup):
        _, routing, mean_matrix, loads = poisson_setup
        errors = []
        for window in (30, 800):
            problem = EstimationProblem(routing=routing, link_load_series=loads[:window])
            estimate = VardiEstimator(poisson_weight=1.0).estimate(problem).estimate
            errors.append(mean_relative_error(estimate, mean_matrix))
        assert errors[1] < errors[0]

    def test_diagnostics_present(self, poisson_setup):
        _, routing, _, loads = poisson_setup
        problem = EstimationProblem(routing=routing, link_load_series=loads[:50])
        result = VardiEstimator(poisson_weight=0.5).estimate(problem)
        assert result.diagnostics["num_snapshots"] == 50
        assert "first_moment_residual" in result.diagnostics
        assert "second_moment_residual" in result.diagnostics


class TestCao:
    def test_parameter_validation(self):
        with pytest.raises(EstimationError):
            CaoEstimator(c=-1.0)
        with pytest.raises(EstimationError):
            CaoEstimator(phi=0.0)
        with pytest.raises(EstimationError):
            CaoEstimator(max_iterations=0)

    def test_improves_over_first_moment_only_start(self, poisson_setup):
        _, routing, mean_matrix, loads = poisson_setup
        problem = EstimationProblem(routing=routing, link_load_series=loads[:400])
        estimate = CaoEstimator(c=1.0, prior="uniform").estimate(problem).estimate
        assert mean_relative_error(estimate, mean_matrix) < 0.6

    def test_first_moment_consistency(self, poisson_setup):
        _, routing, _, loads = poisson_setup
        problem = EstimationProblem(routing=routing, link_load_series=loads[:200])
        result = CaoEstimator(c=1.5, prior="uniform").estimate(problem)
        mean_loads = loads[:200].mean(axis=0)
        relative = result.diagnostics["first_moment_residual"] / np.linalg.norm(mean_loads)
        assert relative < 0.05


class TestFanout:
    @pytest.fixture(scope="class")
    def stable_fanout_setup(self):
        """A demand process with constant fanouts and varying totals."""
        network = random_backbone(6, avg_degree=3.0, seed=31)
        routing = build_routing_matrix(network)
        config = SyntheticTrafficConfig(
            total_traffic_mbps=5_000.0,
            scaling_law=ScalingLaw(phi=0.5, c=1.2),
            fanout_jitter=0.0,
        )
        base = base_demand_matrix(network, config, seed=31)
        model = SyntheticTrafficModel(network, base, flat_profile(), config, seed=32)
        series = model.generate_series(20, start_time_seconds=0.0)
        return network, routing, series

    def build_problem(self, routing, series, window):
        loads = link_load_series(routing, series.window(0, window))
        origins = tuple(dict.fromkeys(p.origin for p in series.pairs))
        totals = np.stack(
            [
                [snapshot.origin_totals()[origin] for origin in origins]
                for snapshot in series.window(0, window)
            ]
        )
        return EstimationProblem(
            routing=routing,
            link_load_series=loads,
            origin_totals_series=totals,
            origin_names=origins,
        )

    def test_fanouts_sum_to_one_per_origin(self, stable_fanout_setup):
        network, routing, series = stable_fanout_setup
        problem = self.build_problem(routing, series, window=5)
        result = FanoutEstimator(window_length=5).estimate(problem)
        fanouts = result.diagnostics["fanouts"]
        origins = [pair.origin for pair in routing.pairs]
        for origin in set(origins):
            mask = np.array([o == origin for o in origins])
            assert fanouts[mask].sum() == pytest.approx(1.0, abs=1e-3)

    def test_fanout_recovery_improves_with_window(self, stable_fanout_setup):
        """More snapshots pin the (constant) fanout vector down more accurately."""
        network, routing, series = stable_fanout_setup
        true_fanouts = series.mean_matrix().fanout_vector()
        errors = []
        for window in (1, 20):
            problem = self.build_problem(routing, series, window)
            result = FanoutEstimator(window_length=window).estimate(problem)
            errors.append(float(np.linalg.norm(result.diagnostics["fanouts"] - true_fanouts)))
        assert errors[1] < errors[0]

    def test_requires_series_and_totals(self, triangle_routing):
        problem = EstimationProblem(
            routing=triangle_routing, link_loads=np.ones(triangle_routing.num_links)
        )
        with pytest.raises(EstimationError):
            FanoutEstimator().estimate(problem)
        series_only = EstimationProblem(
            routing=triangle_routing,
            link_load_series=np.ones((3, triangle_routing.num_links)),
        )
        with pytest.raises(EstimationError):
            FanoutEstimator().estimate(series_only)

    def test_window_longer_than_series_rejected(self, stable_fanout_setup):
        network, routing, series = stable_fanout_setup
        problem = self.build_problem(routing, series, window=5)
        with pytest.raises(EstimationError):
            FanoutEstimator(window_length=50).estimate(problem)

    def test_invalid_window_rejected(self):
        with pytest.raises(EstimationError):
            FanoutEstimator(window_length=0)
