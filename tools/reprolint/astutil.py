"""Small AST helpers shared by the reprolint rules."""

from __future__ import annotations

import ast
from typing import Iterator, Optional

__all__ = [
    "dotted_name",
    "call_name",
    "annotation_names",
    "walk_scopes",
    "Scope",
]


def dotted_name(node: ast.expr) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, ``None`` for anything else."""
    parts: list[str] = []
    current: ast.expr = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if not isinstance(current, ast.Name):
        return None
    parts.append(current.id)
    return ".".join(reversed(parts))


def call_name(node: ast.Call) -> Optional[str]:
    """Dotted name of a call's function, ``None`` when it is not a plain chain."""
    return dotted_name(node.func)


def annotation_names(annotation: Optional[ast.expr]) -> set[str]:
    """Every identifier mentioned anywhere in an annotation expression.

    String annotations (``"RoutingMatrix"``) are parsed so forward
    references participate; unparsable strings contribute their raw text
    as a single token.
    """
    if annotation is None:
        return set()
    names: set[str] = set()
    stack: list[ast.AST] = [annotation]
    while stack:
        node = stack.pop()
        if isinstance(node, ast.Name):
            names.add(node.id)
        elif isinstance(node, ast.Attribute):
            names.add(node.attr)
            stack.append(node.value)
        elif isinstance(node, ast.Constant):
            if isinstance(node.value, str):
                try:
                    stack.append(ast.parse(node.value, mode="eval").body)
                except SyntaxError:
                    names.add(node.value)
        else:
            stack.extend(ast.iter_child_nodes(node))
    return names


def _child_statements(statement: ast.stmt) -> Iterator[ast.stmt]:
    """Direct child statements of ``statement`` (all branches and handlers)."""
    for field_name in ("body", "orelse", "finalbody"):
        for child in getattr(statement, field_name, []):
            if isinstance(child, ast.stmt):
                yield child
    for handler in getattr(statement, "handlers", []):
        yield from handler.body
    for case in getattr(statement, "cases", []):  # match statements
        yield from case.body


class Scope:
    """One function (or the module body) together with its statements."""

    def __init__(self, node: ast.AST, body: list[ast.stmt]) -> None:
        self.node = node
        self.body = body

    @property
    def args(self) -> Optional[ast.arguments]:
        if isinstance(self.node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return self.node.args
        return None

    def statements(self) -> Iterator[ast.stmt]:
        """Every statement of the scope, excluding nested function bodies."""
        stack = list(self.body)
        while stack:
            statement = stack.pop(0)
            yield statement
            if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue  # nested scope: walked separately
            stack.extend(_child_statements(statement))

    def expressions(self) -> Iterator[ast.expr]:
        """Every expression under the scope's statements (nested defs excluded).

        Function and class *bodies* are separate scopes, but their
        decorators evaluate here, so those are included.
        """
        for statement in self.statements():
            children: Iterator[ast.AST]
            if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                children = iter(statement.decorator_list)
            else:
                children = ast.iter_child_nodes(statement)
            for child in children:
                if isinstance(child, ast.expr):
                    for node in ast.walk(child):
                        if isinstance(node, ast.expr):
                            yield node


def walk_scopes(tree: ast.Module) -> Iterator[Scope]:
    """The module scope followed by every (possibly nested) function scope."""
    yield Scope(tree, list(tree.body))
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield Scope(node, list(node.body))
