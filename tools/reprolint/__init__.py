"""reprolint — the repository's AST-based invariant checker.

Four rule families guard the invariants PRs 1-6 established and the
benchmarks in BENCH_PR*.json depend on:

* ``sparse-safety`` — no dense materialisation of routing operators
  outside allowlisted sites;
* ``determinism`` — every random draw is traceable to an explicit seed;
* ``pool-safety`` — process-pool tasks are module-level and workers never
  mutate shared payloads;
* ``registry-contracts`` — registered estimators implement the API
  surface the runners and the README advertise.

Run it as ``python -m reprolint src benchmarks examples`` (with ``tools``
on ``PYTHONPATH``).  Suppress individual findings with an inline
``# reprolint: allow[rule-name]`` pragma or a reviewed entry in
``tools/reprolint/allowlist.txt``.
"""

from __future__ import annotations

from reprolint.engine import (
    AllowlistEntry,
    Diagnostic,
    FileContext,
    ProjectContext,
    load_allowlist,
    run_rules,
)
from reprolint.rules import ALL_RULES, rules_by_name

__all__ = [
    "ALL_RULES",
    "AllowlistEntry",
    "Diagnostic",
    "FileContext",
    "ProjectContext",
    "load_allowlist",
    "run_rules",
    "rules_by_name",
]

__version__ = "1.0"
