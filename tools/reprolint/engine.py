"""Rule engine of ``reprolint``: file walking, suppression, reporting.

The engine is deliberately small.  A *rule* is an object with a ``name``,
a ``code`` and one (or both) of two hooks:

* ``check(context)`` — per-file analysis over the parsed AST;
* ``check_project(project)`` — whole-run analysis over every parsed file
  (used by cross-module rules such as ``registry-contracts``, which must
  resolve class hierarchies across files).

Both hooks yield :class:`Diagnostic` records.  The engine owns the two
suppression mechanisms so rules never have to think about them:

* **inline pragmas** — ``# reprolint: allow[rule-name]`` (or
  ``allow[rule-a, rule-b]`` / ``allow[*]``) on the flagged line or the
  line directly above it;
* **the checked-in allowlist** — ``allowlist.txt`` next to this module,
  granting either a whole file or the lines of a file containing a
  given substring for one rule (see :class:`AllowlistEntry`).

Suppressed diagnostics are dropped before reporting, so the exit code
reflects only live violations.
"""

from __future__ import annotations

import ast
import fnmatch
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Optional, Protocol, Sequence

__all__ = [
    "Diagnostic",
    "FileContext",
    "ProjectContext",
    "Rule",
    "AllowlistEntry",
    "load_allowlist",
    "parse_pragmas",
    "collect_files",
    "run_rules",
]

#: ``# reprolint: allow[rule-a, rule-b]`` — the inline suppression pragma.
_PRAGMA_RE = re.compile(r"#\s*reprolint:\s*allow\[([^\]]*)\]")


@dataclass(frozen=True)
class Diagnostic:
    """One finding: where it is, which rule fired, and why."""

    path: str
    line: int
    column: int
    rule: str
    code: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.column}: {self.code} [{self.rule}] {self.message}"


class Rule(Protocol):
    """Static interface every rule module's ``RULE`` object satisfies."""

    name: str
    code: str
    description: str

    def check(self, context: "FileContext") -> Iterator[Diagnostic]: ...


@dataclass(frozen=True)
class AllowlistEntry:
    """One grant from the checked-in allowlist file.

    ``rule`` names the rule being silenced (``*`` for all rules), ``path``
    is an fnmatch glob over the repo-relative posix path, and ``fragment``
    restricts the grant to source lines containing the substring (``*``
    grants the whole file).  Every entry carries a human reason so the
    allowlist stays reviewable.
    """

    rule: str
    path: str
    fragment: str
    reason: str

    def matches(self, diagnostic: Diagnostic, source_line: str) -> bool:
        if self.rule != "*" and self.rule != diagnostic.rule:
            return False
        if not fnmatch.fnmatch(diagnostic.path, self.path):
            return False
        if self.fragment == "*":
            return True
        return self.fragment in source_line


@dataclass
class FileContext:
    """Everything a per-file rule needs about one source file."""

    path: str  # repo-relative posix path used in diagnostics
    tree: ast.Module
    source_lines: list[str]
    pragmas: dict[int, set[str]] = field(default_factory=dict)

    def line(self, number: int) -> str:
        """1-indexed source line (empty string when out of range)."""
        if 1 <= number <= len(self.source_lines):
            return self.source_lines[number - 1]
        return ""

    def suppressed(self, diagnostic: Diagnostic) -> bool:
        """Whether an inline pragma on the line (or the one above) allows it."""
        for line in (diagnostic.line, diagnostic.line - 1):
            rules = self.pragmas.get(line)
            if rules and ("*" in rules or diagnostic.rule in rules):
                return True
        return False


@dataclass
class ProjectContext:
    """All parsed files of one run, for cross-module rules."""

    files: list[FileContext]

    def by_path(self, path: str) -> Optional[FileContext]:
        for context in self.files:
            if context.path == path:
                return context
        return None


def parse_pragmas(source_lines: Sequence[str]) -> dict[int, set[str]]:
    """Map 1-indexed line numbers to the rule names their pragma allows."""
    pragmas: dict[int, set[str]] = {}
    for number, text in enumerate(source_lines, start=1):
        match = _PRAGMA_RE.search(text)
        if match is None:
            continue
        names = {part.strip() for part in match.group(1).split(",") if part.strip()}
        if names:
            pragmas[number] = names
    return pragmas


def load_allowlist(path: Path) -> list[AllowlistEntry]:
    """Parse the allowlist file: ``rule | path-glob | fragment | reason`` lines.

    Blank lines and ``#`` comments are skipped.  A malformed line raises
    ``ValueError`` — a silently ignored grant is worse than a loud one.
    """
    entries: list[AllowlistEntry] = []
    for number, raw in enumerate(path.read_text().splitlines(), start=1):
        text = raw.strip()
        if not text or text.startswith("#"):
            continue
        parts = [part.strip() for part in text.split("|")]
        if len(parts) != 4 or not all(parts):
            raise ValueError(
                f"{path}:{number}: allowlist lines need 'rule | path-glob | fragment | reason'"
            )
        entries.append(AllowlistEntry(*parts))
    return entries


def collect_files(paths: Iterable[Path], root: Path) -> list[Path]:
    """Expand the CLI path arguments into the sorted set of ``.py`` files."""
    files: set[Path] = set()
    for path in paths:
        resolved = path if path.is_absolute() else root / path
        if resolved.is_dir():
            files.update(
                candidate
                for candidate in resolved.rglob("*.py")
                if "__pycache__" not in candidate.parts
                and not any(part.startswith(".") for part in candidate.relative_to(root).parts)
            )
        elif resolved.is_file():
            files.add(resolved)
        else:
            raise FileNotFoundError(f"no such file or directory: {path}")
    return sorted(files)


def _build_context(file_path: Path, root: Path) -> tuple[Optional[FileContext], Optional[Diagnostic]]:
    relative = file_path.relative_to(root).as_posix()
    source = file_path.read_text()
    try:
        tree = ast.parse(source, filename=str(file_path))
    except SyntaxError as exc:
        return None, Diagnostic(
            path=relative,
            line=exc.lineno or 1,
            column=(exc.offset or 1),
            rule="parse",
            code="REPRO000",
            message=f"file does not parse: {exc.msg}",
        )
    lines = source.splitlines()
    return FileContext(path=relative, tree=tree, source_lines=lines, pragmas=parse_pragmas(lines)), None


def run_rules(
    rules: Sequence[Rule],
    paths: Iterable[Path],
    root: Path,
    allowlist: Sequence[AllowlistEntry] = (),
) -> list[Diagnostic]:
    """Run every rule over every file and return the live diagnostics, sorted."""
    contexts: list[FileContext] = []
    diagnostics: list[Diagnostic] = []
    for file_path in collect_files(paths, root):
        context, parse_error = _build_context(file_path, root)
        if parse_error is not None:
            diagnostics.append(parse_error)
            continue
        assert context is not None
        contexts.append(context)
        for rule in rules:
            check = getattr(rule, "check", None)
            if check is not None:
                diagnostics.extend(check(context))
    project = ProjectContext(files=contexts)
    for rule in rules:
        check_project = getattr(rule, "check_project", None)
        if check_project is not None:
            diagnostics.extend(check_project(project))

    by_path = {context.path: context for context in contexts}
    live: list[Diagnostic] = []
    for diagnostic in diagnostics:
        context = by_path.get(diagnostic.path)
        if context is not None and context.suppressed(diagnostic):
            continue
        source_line = context.line(diagnostic.line) if context is not None else ""
        if any(entry.matches(diagnostic, source_line) for entry in allowlist):
            continue
        live.append(diagnostic)
    live.sort(key=lambda d: (d.path, d.line, d.column, d.code))
    return live
