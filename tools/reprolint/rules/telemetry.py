"""``telemetry``: timing in library code goes through ``repro.telemetry``.

PR 9 gave the pipeline one observability spine: spans carry wall-clock
start times (``time.time`` via :func:`repro.telemetry.clock`) *and*
monotonic durations, and the exporters align them across processes so a
worker's trace slots under its submitting span.  Ad-hoc ``time.time()`` /
``time.perf_counter()`` calls sprinkled through ``src/`` fork that spine:
they measure things the trace cannot see, drift from the span clock
conventions (wall vs. monotonic), and — worst — leak non-deterministic
wall-clock values into records that PRs 3/8 pin as serial==parallel
identical.

This rule flags every call to a :mod:`time` timer function inside
``src/`` (outside ``src/repro/telemetry/``, which *implements* the
clocks):

* module-attribute form — ``time.time()``, ``time.perf_counter()``,
  ``time.monotonic()``, their ``_ns`` variants and ``process_time``,
  through any ``import time as t`` alias;
* bare imported form — ``from time import perf_counter`` followed by
  ``perf_counter()`` (including ``as`` renames).

Timing that belongs in a trace should open a span; code that genuinely
needs a raw clock (e.g. the cooperative solver budget's deadline check)
carries an inline ``# reprolint: allow[telemetry]`` pragma or an
``allowlist.txt`` entry naming the file and line fragment.
"""

from __future__ import annotations

import ast
from typing import Iterator

from reprolint.astutil import dotted_name
from reprolint.engine import Diagnostic, FileContext

__all__ = ["RULE"]

#: ``time`` module functions that read a clock.  ``sleep`` is deliberately
#: absent — it does not *measure* anything.
TIMER_FUNCTIONS = {
    "time",
    "time_ns",
    "perf_counter",
    "perf_counter_ns",
    "monotonic",
    "monotonic_ns",
    "process_time",
    "process_time_ns",
}


class _TelemetryRule:
    name = "telemetry"
    code = "REPRO601"
    description = (
        "library code must not call time.time()/perf_counter()/monotonic() "
        "directly; open a repro.telemetry span (or use telemetry.clock()) instead"
    )

    def check(self, context: FileContext) -> Iterator[Diagnostic]:
        if not context.path.startswith("src/"):
            return
        if context.path.startswith("src/repro/telemetry/"):
            return
        module_aliases, bare_timers = self._timer_bindings(context.tree)
        if not module_aliases and not bare_timers:
            return
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Call):
                continue
            timer = self._timer_called(node, module_aliases, bare_timers)
            if timer is None:
                continue
            yield Diagnostic(
                path=context.path,
                line=node.lineno,
                column=node.col_offset + 1,
                rule=self.name,
                code=self.code,
                message=(
                    f"direct time.{timer}() call in library code — raw clock "
                    "reads bypass the telemetry spine (spans align wall and "
                    "monotonic clocks across processes) and risk leaking "
                    "wall-clock into serial==parallel-identical records; wrap "
                    "the region in telemetry.span(...) or use "
                    "telemetry.clock() (reviewed exceptions: "
                    "# reprolint: allow[telemetry])"
                ),
            )

    # ------------------------------------------------------------------
    @staticmethod
    def _timer_bindings(tree: ast.Module) -> tuple[set[str], dict[str, str]]:
        """Names the ``time`` module and its timers are bound to here.

        Returns ``(module_aliases, bare_timers)`` where ``module_aliases``
        holds local names for the ``time`` module itself and
        ``bare_timers`` maps a locally bound name to the timer it aliases.
        """
        module_aliases: set[str] = set()
        bare_timers: dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "time":
                        module_aliases.add(alias.asname or alias.name)
            elif isinstance(node, ast.ImportFrom):
                if node.module != "time" or node.level:
                    continue
                for alias in node.names:
                    if alias.name in TIMER_FUNCTIONS:
                        bare_timers[alias.asname or alias.name] = alias.name
        return module_aliases, bare_timers

    @staticmethod
    def _timer_called(
        call: ast.Call, module_aliases: set[str], bare_timers: dict[str, str]
    ) -> str | None:
        """The timer name a call resolves to, or ``None``."""
        name = dotted_name(call.func)
        if name is None:
            return None
        if "." in name:
            prefix, leaf = name.rsplit(".", 1)
            if prefix in module_aliases and leaf in TIMER_FUNCTIONS:
                return leaf
            return None
        return bare_timers.get(name)


RULE = _TelemetryRule()
