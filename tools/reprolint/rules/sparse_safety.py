"""``sparse-safety``: no dense materialisation of routing operators.

PR 5/6 bought their scale wins (BENCH_PR5.json, BENCH_PR6.json) by keeping
the ``(links x pairs)`` routing matrix in CSR end to end: the N=200 tier
runs in an 18 MB tracemalloc peak where the dense path needs 191 MB, and
the N=500 sharded tier in 52 MB against a 2.99 GB dense allowance.  A
single careless ``.toarray()`` — or an ``np.asarray`` / ``np.linalg``
call, which silently densifies operator objects — on a hot path reverts
that.  The tracemalloc guards in the benchmarks only catch the regression
at bench time; this rule catches it at lint time.

The rule runs a light per-scope taint analysis: expressions are
*routing-typed* when they come from

* attribute chains ending in ``.routing`` / ``.backend`` / ``._backend``
  (the conventional homes of :class:`RoutingMatrix` / backend objects),
* constructor or factory calls (``RoutingMatrix``, ``make_backend``,
  ``build_routing_matrix``, ``DenseBackend``, ``SparseBackend``, ...),
* operator-preserving methods (``select_pairs`` / ``column_select`` /
  ``with_backend``), or
* parameters annotated with a routing type,

and assignments propagate the taint.  On a routing-typed expression the
rule flags ``.toarray()`` calls, ``np.asarray(...)`` and any
``np.linalg.*`` call.  Legitimate dense sites — the backend module that
*implements* the interface, the documented cached dense views on
``RoutingMatrix``, dense-branch code that is explicitly gated on the
backend kind — live in the checked-in allowlist or carry an inline
``# reprolint: allow[sparse-safety]`` pragma.
"""

from __future__ import annotations

import ast
from typing import Iterator

from reprolint.astutil import annotation_names, dotted_name, walk_scopes
from reprolint.engine import Diagnostic, FileContext

__all__ = ["RULE"]

#: Attribute names whose access yields a routing operator object.
ROUTING_ATTRIBUTES = {"routing", "backend", "_backend", "routing_matrix"}

#: Constructors / factories returning routing operator objects.
ROUTING_FACTORIES = {
    "RoutingMatrix",
    "make_backend",
    "build_routing_matrix",
    "build_ecmp_routing_matrix",
    "DenseBackend",
    "SparseBackend",
}

#: Methods that return another routing operator (taint-preserving).
ROUTING_METHODS = {"select_pairs", "column_select", "with_backend"}

#: Annotation identifiers marking a parameter as routing-typed.
ROUTING_ANNOTATIONS = {
    "RoutingMatrix",
    "RoutingBackend",
    "RoutingOperator",
    "DenseBackend",
    "SparseBackend",
}


class _SparseSafetyRule:
    name = "sparse-safety"
    code = "REPRO101"
    description = (
        "no .toarray()/np.asarray/np.linalg.* on RoutingMatrix/backend objects "
        "outside allowlisted sites"
    )

    def check(self, context: FileContext) -> Iterator[Diagnostic]:
        for scope in walk_scopes(context.tree):
            tainted = self._tainted_names(scope)
            for node in scope.expressions():
                yield from self._check_expression(node, tainted, context)

    # ------------------------------------------------------------------
    def _tainted_names(self, scope) -> set[str]:
        """Names bound to routing-typed values anywhere in the scope.

        Two passes over the scope's assignments reach a fixpoint for the
        chains this codebase actually writes (``a = problem.routing``
        followed by ``b = a.select_pairs(...)``).
        """
        tainted: set[str] = set()
        args = scope.args
        if args is not None:
            for arg in list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs):
                if annotation_names(arg.annotation) & ROUTING_ANNOTATIONS:
                    tainted.add(arg.arg)
        for _ in range(2):
            for statement in scope.statements():
                targets: list[ast.expr] = []
                value: ast.expr | None = None
                if isinstance(statement, ast.Assign):
                    targets, value = statement.targets, statement.value
                elif isinstance(statement, ast.AnnAssign):
                    if annotation_names(statement.annotation) & ROUTING_ANNOTATIONS:
                        if isinstance(statement.target, ast.Name):
                            tainted.add(statement.target.id)
                    targets, value = [statement.target], statement.value
                if value is None or not self._is_routing(value, tainted):
                    continue
                for target in targets:
                    if isinstance(target, ast.Name):
                        tainted.add(target.id)
        return tainted

    def _is_routing(self, node: ast.expr, tainted: set[str]) -> bool:
        """Whether ``node`` evaluates to a routing operator object."""
        if isinstance(node, ast.Name):
            return node.id in tainted
        if isinstance(node, ast.Attribute):
            return node.attr in ROUTING_ATTRIBUTES
        if isinstance(node, ast.Call):
            name = dotted_name(node.func)
            if name is not None and name.split(".")[-1] in ROUTING_FACTORIES:
                return True
            if isinstance(node.func, ast.Attribute) and node.func.attr in ROUTING_METHODS:
                return True
        return False

    def _check_expression(
        self, node: ast.expr, tainted: set[str], context: FileContext
    ) -> Iterator[Diagnostic]:
        if not isinstance(node, ast.Call):
            return
        func = node.func
        # <routing>.toarray()
        if (
            isinstance(func, ast.Attribute)
            and func.attr == "toarray"
            and self._is_routing(func.value, tainted)
        ):
            yield self._diagnostic(
                context,
                node,
                f"dense materialisation: {self._describe(func.value)}.toarray() — use the "
                "operator products (matvec/rmatvec/gram) or column_select, or allowlist "
                "this site",
            )
            return
        name = dotted_name(func)
        if name is None:
            return
        flagged = None
        if name in ("np.asarray", "numpy.asarray"):
            flagged = "np.asarray"
        elif name.startswith(("np.linalg.", "numpy.linalg.")):
            flagged = name.replace("numpy.", "np.", 1)
        if flagged is None:
            return
        for argument in list(node.args) + [kw.value for kw in node.keywords]:
            if self._is_routing(argument, tainted) or self._is_dense_of_routing(
                argument, tainted
            ):
                yield self._diagnostic(
                    context,
                    node,
                    f"{flagged} applied to routing operator "
                    f"{self._describe(argument)} forces a dense (links x pairs) array",
                )
                break

    def _is_dense_of_routing(self, node: ast.expr, tainted: set[str]) -> bool:
        """``X.toarray()`` where X is routing-typed (already dense, still flagged)."""
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "toarray"
            and self._is_routing(node.func.value, tainted)
        )

    @staticmethod
    def _describe(node: ast.expr) -> str:
        name = dotted_name(node)
        if name is not None:
            return name
        if isinstance(node, ast.Call):
            inner = dotted_name(node.func)
            return f"{inner}(...)" if inner else "<call>"
        return "<expression>"

    def _diagnostic(self, context: FileContext, node: ast.AST, message: str) -> Diagnostic:
        return Diagnostic(
            path=context.path,
            line=node.lineno,
            column=node.col_offset + 1,
            rule=self.name,
            code=self.code,
            message=message,
        )


RULE = _SparseSafetyRule()
