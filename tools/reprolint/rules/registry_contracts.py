"""``registry-contracts``: registered estimators honour the advertised API.

The estimator registry (:mod:`repro.estimation.registry`) is what lets the
experiment runners, ``Scenario.sweep()`` and the planning sweeps compose
method sets by *name* — which also means a registered class that quietly
drops part of the :class:`~repro.estimation.base.Estimator` surface fails
at a distance: a missing ``estimate`` only explodes inside a sweep, an
incompatible ``estimate_series`` override silently falls out of the
batched path, and a removed ``set_warm_start`` turns the PR 3/5 warm-start
speedups off without any test noticing (the generic series loop probes it
with ``getattr``).

For every class decorated with ``@register(...)`` the rule checks, across
all scanned files (inheritance is resolved project-wide by class name):

* a concrete (non-``abstractmethod``) ``estimate`` exists in the class or
  an ancestor, with an ``(self, problem)``-compatible signature;
* ``estimate_series`` is either inherited from the generic batched
  fallback or overridden with a compatible ``(self, problem)`` signature;
* ``set_warm_start``, where defined, takes exactly one required argument
  (the previous snapshot's vector);
* the class carries a registry ``name`` (a ``name = "..."`` class
  attribute or an explicit ``@register("...")`` argument);
* estimators registered under a name in :data:`WARM_START_CONTRACTS`
  (the methods the README advertises as warm-started) define or inherit
  ``set_warm_start``.

Signature compatibility means: exactly one required positional parameter
besides ``self``; any extra parameters must carry defaults (so the
runners' positional call sites keep working).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator, Optional

from reprolint.astutil import dotted_name
from reprolint.engine import Diagnostic, ProjectContext

__all__ = ["RULE", "WARM_START_CONTRACTS"]

#: Registry names whose warm-start support is advertised (README "Batched
#: series estimation" / "Performance" sections): the generic series loop
#: feeds each snapshot's solution to the next solve for these methods, and
#: the BENCH_PR3 grid timings (~4x per cell) depend on it.
WARM_START_CONTRACTS = {"bayesian", "entropy", "vardi", "tomogravity"}

#: Methods whose overrides must stay call-compatible with the base class.
SINGLE_ARGUMENT_METHODS = ("estimate", "estimate_series", "set_warm_start")


@dataclass
class _ClassInfo:
    name: str
    path: str
    line: int
    column: int
    bases: list[str]
    methods: dict[str, ast.FunctionDef] = field(default_factory=dict)
    abstract_methods: set[str] = field(default_factory=set)
    class_attributes: set[str] = field(default_factory=set)
    name_literal: Optional[str] = None
    registered_name: Optional[str] = None
    is_registered: bool = False


class _RegistryContractsRule:
    name = "registry-contracts"
    code = "REPRO401"
    description = (
        "every @register()'d estimator defines the advertised API surface "
        "(estimate / estimate_series / set_warm_start) with compatible signatures"
    )

    def check_project(self, project: ProjectContext) -> Iterator[Diagnostic]:
        classes = self._collect_classes(project)
        for info in classes.values():
            if info.is_registered:
                yield from self._check_class(info, classes)

    # ------------------------------------------------------------------
    def _collect_classes(self, project: ProjectContext) -> dict[str, _ClassInfo]:
        classes: dict[str, _ClassInfo] = {}
        for context in project.files:
            for node in ast.walk(context.tree):
                if not isinstance(node, ast.ClassDef):
                    continue
                info = _ClassInfo(
                    name=node.name,
                    path=context.path,
                    line=node.lineno,
                    column=node.col_offset + 1,
                    bases=[
                        base_name.split(".")[-1]
                        for base in node.bases
                        if (base_name := dotted_name(base)) is not None
                    ],
                )
                for statement in node.body:
                    if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        if isinstance(statement, ast.FunctionDef):
                            info.methods[statement.name] = statement
                        if self._is_abstract(statement):
                            info.abstract_methods.add(statement.name)
                    elif isinstance(statement, ast.Assign):
                        for target in statement.targets:
                            if isinstance(target, ast.Name):
                                info.class_attributes.add(target.id)
                                if (
                                    target.id == "name"
                                    and isinstance(statement.value, ast.Constant)
                                    and isinstance(statement.value.value, str)
                                ):
                                    info.name_literal = statement.value.value
                    elif isinstance(statement, ast.AnnAssign) and isinstance(
                        statement.target, ast.Name
                    ):
                        info.class_attributes.add(statement.target.id)
                self._read_register_decorator(node, info)
                # Last definition wins on duplicate class names — matches
                # how a scan of one package behaves in practice.
                classes[node.name] = info
        return classes

    @staticmethod
    def _is_abstract(method: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
        for decorator in method.decorator_list:
            name = dotted_name(decorator)
            if name is not None and name.split(".")[-1] == "abstractmethod":
                return True
        return False

    @staticmethod
    def _read_register_decorator(node: ast.ClassDef, info: _ClassInfo) -> None:
        for decorator in node.decorator_list:
            call = decorator if isinstance(decorator, ast.Call) else None
            target = call.func if call is not None else decorator
            name = dotted_name(target)
            if name is None or name.split(".")[-1] != "register":
                continue
            info.is_registered = True
            if call is not None and call.args:
                first = call.args[0]
                if isinstance(first, ast.Constant) and isinstance(first.value, str):
                    info.registered_name = first.value

    # ------------------------------------------------------------------
    def _mro(self, info: _ClassInfo, classes: dict[str, _ClassInfo]) -> list[_ClassInfo]:
        """The class and its project-visible ancestors (by simple name)."""
        chain: list[_ClassInfo] = []
        seen: set[str] = set()
        stack = [info.name]
        while stack:
            name = stack.pop(0)
            if name in seen or name not in classes:
                continue
            seen.add(name)
            current = classes[name]
            chain.append(current)
            stack.extend(current.bases)
        return chain

    def _find_method(
        self, chain: list[_ClassInfo], method: str
    ) -> tuple[Optional[_ClassInfo], Optional[ast.FunctionDef], bool]:
        """First definition of ``method`` along the chain, plus abstractness."""
        for info in chain:
            if method in info.methods:
                return info, info.methods[method], method in info.abstract_methods
        return None, None, False

    def _check_class(
        self, info: _ClassInfo, classes: dict[str, _ClassInfo]
    ) -> Iterator[Diagnostic]:
        chain = self._mro(info, classes)

        owner, method, is_abstract = self._find_method(chain, "estimate")
        if method is None or is_abstract:
            yield self._diagnostic(
                info,
                f"registered estimator {info.name} has no concrete estimate() "
                "implementation — the registry contract requires "
                "estimate(self, problem)",
            )

        for method_name in SINGLE_ARGUMENT_METHODS:
            if method_name not in info.methods:
                continue  # inherited implementations were checked on their owner
            problem = self._signature_problem(info.methods[method_name])
            if problem is not None:
                yield self._diagnostic(
                    info,
                    f"{info.name}.{method_name} has an incompatible signature: "
                    f"{problem} (runners call it positionally with one argument)",
                    line=info.methods[method_name].lineno,
                    column=info.methods[method_name].col_offset + 1,
                )

        registry_name = info.registered_name
        if registry_name is None:
            named = [c for c in chain if "name" in c.class_attributes]
            if not named:
                yield self._diagnostic(
                    info,
                    f"registered estimator {info.name} has no registry name: add a "
                    "name = \"...\" class attribute or pass @register(\"...\")",
                )

        effective_name = registry_name or self._literal_name(chain)
        if effective_name in WARM_START_CONTRACTS:
            _, warm, _ = self._find_method(chain, "set_warm_start")
            if warm is None:
                yield self._diagnostic(
                    info,
                    f"estimator {effective_name!r} is advertised as warm-startable "
                    "(README batched-series contract) but defines no "
                    "set_warm_start(vector)",
                )

    @staticmethod
    def _literal_name(chain: list[_ClassInfo]) -> Optional[str]:
        # The registry reads the ``name`` class attribute; recover it when it
        # is a plain string literal on the class (or an ancestor).
        for info in chain:
            if info.name_literal is not None:
                return info.name_literal
        return None

    def _signature_problem(self, method: ast.FunctionDef) -> Optional[str]:
        args = method.args
        positional = list(args.posonlyargs) + list(args.args)
        if not positional or positional[0].arg != "self":
            return "first parameter must be self"
        required = positional[1:]
        defaults = list(args.defaults)
        num_defaulted = len(defaults)
        if num_defaulted:
            required = required[:-num_defaulted] if num_defaulted < len(required) else []
        if len(required) != 1:
            return (
                f"expected exactly one required parameter after self, "
                f"found {len(required)}"
            )
        for keyword in args.kwonlyargs:
            index = args.kwonlyargs.index(keyword)
            if args.kw_defaults[index] is None:
                return f"keyword-only parameter {keyword.arg!r} has no default"
        return None

    def _diagnostic(
        self,
        info: _ClassInfo,
        message: str,
        line: Optional[int] = None,
        column: Optional[int] = None,
    ) -> Diagnostic:
        return Diagnostic(
            path=info.path,
            line=line if line is not None else info.line,
            column=column if column is not None else info.column,
            rule=self.name,
            code=self.code,
            message=message,
        )


RULE = _RegistryContractsRule()
