"""Rule registry: every rule family ships one module exposing ``RULE``."""

from __future__ import annotations

from reprolint.rules.determinism import RULE as DETERMINISM
from reprolint.rules.fault_handling import RULE as FAULT_HANDLING
from reprolint.rules.pool_safety import RULE as POOL_SAFETY
from reprolint.rules.registry_contracts import RULE as REGISTRY_CONTRACTS
from reprolint.rules.sparse_safety import RULE as SPARSE_SAFETY
from reprolint.rules.telemetry import RULE as TELEMETRY

__all__ = ["ALL_RULES", "rules_by_name"]

#: Evaluation order is also the display order of ``--list-rules``.
ALL_RULES = (
    SPARSE_SAFETY,
    DETERMINISM,
    POOL_SAFETY,
    REGISTRY_CONTRACTS,
    FAULT_HANDLING,
    TELEMETRY,
)


def rules_by_name() -> dict[str, object]:
    return {rule.name: rule for rule in ALL_RULES}
