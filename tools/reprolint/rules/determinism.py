"""``determinism``: every random draw must be traceable to a seed.

The repository's records are only comparable because runs are
reproducible: the region partitioner must emit identical partitions for
identical seeds (PR 6's serial==parallel shard records), generators must
rebuild bit-identical topologies (``large_scenario(n, seed)`` backs the
BENCH_PR5/PR6 timings), and benchmark MRE numbers are pinned in committed
JSON records.  One unseeded ``default_rng()`` in any of those paths turns
a regression signal into noise.

The rule flags, in every checked file:

* legacy global-state NumPy randomness — any ``np.random.<fn>(...)`` draw
  or ``np.random.seed(...)`` (global state leaks across call sites, so
  even the seeded form is banned in favour of ``Generator`` objects);
* ``np.random.default_rng()`` / ``default_rng(None)`` and
  ``np.random.RandomState()`` / ``RandomState(None)`` — generator
  construction without a seed;
* calls to the repo's own stochastic entry points whose ``seed`` defaults
  to ``None`` (``random_backbone``, ``poisson_series``, ...) without an
  explicit ``seed=`` or ``rng=`` argument.

APIs that deliberately accept "give me fresh entropy" semantics carry an
inline ``# reprolint: allow[determinism]`` pragma with a justification.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from reprolint.astutil import dotted_name
from reprolint.engine import Diagnostic, FileContext

__all__ = ["RULE"]

#: Legacy ``np.random`` module-level functions that draw from (or mutate)
#: the hidden global state.
LEGACY_GLOBAL_FUNCTIONS = {
    "beta", "binomial", "bytes", "chisquare", "choice", "dirichlet",
    "exponential", "f", "gamma", "geometric", "gumbel", "hypergeometric",
    "laplace", "logistic", "lognormal", "logseries", "multinomial",
    "multivariate_normal", "negative_binomial", "noncentral_chisquare",
    "noncentral_f", "normal", "pareto", "permutation", "poisson", "power",
    "rand", "randint", "randn", "random", "random_integers", "random_sample",
    "ranf", "rayleigh", "sample", "seed", "shuffle", "standard_cauchy",
    "standard_exponential", "standard_gamma", "standard_normal", "standard_t",
    "triangular", "uniform", "vonmises", "wald", "weibull", "zipf",
}

#: Repo entry points whose ``seed`` parameter defaults to ``None``: calling
#: them without ``seed=`` / ``rng=`` silently produces irreproducible data.
SEED_REQUIRED_FUNCTIONS = {
    "random_backbone",
    "large_scenario",
    "poisson_series",
    "base_demand_matrix",
    "netflow_smoothed_series",
    "SyntheticTrafficModel",
}


class _DeterminismRule:
    name = "determinism"
    code = "REPRO201"
    description = (
        "no unseeded np.random.* / RandomState() / default_rng(), and the repo's "
        "stochastic entry points need an explicit seed= / rng="
    )

    def check(self, context: FileContext) -> Iterator[Diagnostic]:
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Call):
                continue
            diagnostic = self._check_call(node, context)
            if diagnostic is not None:
                yield diagnostic

    # ------------------------------------------------------------------
    def _check_call(self, node: ast.Call, context: FileContext) -> Optional[Diagnostic]:
        name = dotted_name(node.func)
        if name is None:
            return None
        tail = name.split(".")[-1]
        is_np_random = name.startswith(("np.random.", "numpy.random."))

        if is_np_random and tail in LEGACY_GLOBAL_FUNCTIONS:
            return self._diagnostic(
                context,
                node,
                f"legacy global-state call {name}(...): construct a seeded "
                "np.random.default_rng(seed) generator and draw from it instead",
            )
        if tail == "default_rng" and (is_np_random or name == "default_rng"):
            if self._first_argument_missing_or_none(node):
                return self._diagnostic(
                    context,
                    node,
                    f"unseeded {name}(): pass an explicit seed so runs are reproducible",
                )
            return None
        if tail == "RandomState" and (is_np_random or name == "RandomState"):
            if self._first_argument_missing_or_none(node):
                return self._diagnostic(
                    context,
                    node,
                    f"unseeded {name}(): pass an explicit seed so runs are reproducible",
                )
            return None
        if tail in SEED_REQUIRED_FUNCTIONS and not is_np_random:
            keywords = {kw.arg for kw in node.keywords if kw.arg is not None}
            if "seed" not in keywords and "rng" not in keywords:
                # Positional seeds count too: compare against the known
                # signatures is overkill — a call spelling seed positionally
                # is rare enough that the pragma covers it.
                return self._diagnostic(
                    context,
                    node,
                    f"{tail}(...) draws random numbers but was called without an "
                    "explicit seed= (its seed defaults to None)",
                )
        return None

    @staticmethod
    def _first_argument_missing_or_none(node: ast.Call) -> bool:
        if node.args:
            first = node.args[0]
            return isinstance(first, ast.Constant) and first.value is None
        for keyword in node.keywords:
            if keyword.arg == "seed":
                return isinstance(keyword.value, ast.Constant) and keyword.value.value is None
        return True

    def _diagnostic(self, context: FileContext, node: ast.AST, message: str) -> Diagnostic:
        return Diagnostic(
            path=context.path,
            line=node.lineno,
            column=node.col_offset + 1,
            rule=self.name,
            code=self.code,
            message=message,
        )


RULE = _DeterminismRule()
