"""``fault-handling``: no silently swallowed pipeline errors.

The :class:`repro.errors.ReproError` hierarchy is the pipeline's fault
vocabulary: an ``EstimationError`` or ``SolverError`` reaching an
``except`` block means an estimation method, a solver or a measurement
stage *failed*.  The resilience layer (PR 8) makes degradation explicit —
fallbacks emit ``RuntimeWarning``\\ s and structured
``FailureReason``/``DegradationReport`` records — so the one pattern that
must never ship is the silent variant::

    try:
        result = estimator.estimate(problem)
    except EstimationError:
        result = prior          # nothing logged, nothing recorded

A sweep built on that code reports a prior as if the method had run, and
nobody ever learns the method failed.  This rule flags every ``except``
handler in ``src/`` that catches a :class:`ReproError` subclass (by name,
including ``(EstimationError, SolverError)`` tuples) whose body neither

* re-raises (``raise`` — bare or with a new exception), nor
* warns or logs (a call whose final attribute is ``warn``, ``warning``,
  ``error``, ``exception``, ``critical``, ``info``, ``debug`` or ``log``),
  nor
* records the failure structurally (constructs or calls anything whose
  name mentions ``FailureReason``, ``DegradationEvent``,
  ``DegradationReport`` or a ``skip_record``/``from_exception`` helper).

Handlers whose silence is a reviewed design decision — e.g. probing
whether an optional input exists — carry an inline
``# reprolint: allow[fault-handling]`` pragma or an ``allowlist.txt``
entry naming the file and a line fragment.
"""

from __future__ import annotations

import ast
from typing import Iterator

from reprolint.astutil import dotted_name
from reprolint.engine import Diagnostic, FileContext

__all__ = ["RULE"]

#: The ReproError hierarchy, by class name (cross-file resolution is not
#: needed: the codebase always catches these by their imported names).
REPRO_ERRORS = {
    "ReproError",
    "TopologyError",
    "RoutingError",
    "TrafficError",
    "MeasurementError",
    "EstimationError",
    "PlanningError",
    "SolverError",
    "BudgetExceededError",
}

#: A call whose dotted name *ends* in one of these counts as surfacing the
#: failure (warnings.warn, logger.warning/error/exception, log, ...).
SURFACING_CALLS = {
    "warn",
    "warning",
    "error",
    "exception",
    "critical",
    "info",
    "debug",
    "log",
}

#: Constructing/consuming one of these inside the handler counts as
#: recording the failure structurally.
STRUCTURED_RECORDS = {
    "FailureReason",
    "DegradationEvent",
    "DegradationReport",
    "from_exception",
    "skip_record",
}


class _FaultHandlingRule:
    name = "fault-handling"
    code = "REPRO501"
    description = (
        "except blocks catching ReproError subclasses must re-raise, warn/log, "
        "or record a structured failure reason"
    )

    def check(self, context: FileContext) -> Iterator[Diagnostic]:
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            caught = self._caught_repro_errors(node.type)
            if not caught:
                continue
            if self._handler_surfaces(node):
                continue
            yield Diagnostic(
                path=context.path,
                line=node.lineno,
                column=node.col_offset + 1,
                rule=self.name,
                code=self.code,
                message=(
                    f"except block swallows {', '.join(sorted(caught))} without "
                    "re-raising, warning/logging, or recording a structured "
                    "failure reason — a silent fallback hides degraded results; "
                    "emit a RuntimeWarning or build a FailureReason/"
                    "DegradationReport (reviewed exceptions: "
                    "# reprolint: allow[fault-handling])"
                ),
            )

    # ------------------------------------------------------------------
    @staticmethod
    def _caught_repro_errors(node: ast.expr | None) -> set[str]:
        """ReproError subclass names mentioned in the handler's type."""
        if node is None:
            return set()
        names = [node] if not isinstance(node, ast.Tuple) else list(node.elts)
        caught: set[str] = set()
        for name_node in names:
            name = dotted_name(name_node)
            if name is not None and name.split(".")[-1] in REPRO_ERRORS:
                caught.add(name.split(".")[-1])
        return caught

    @staticmethod
    def _handler_surfaces(handler: ast.ExceptHandler) -> bool:
        """Whether the handler body re-raises, warns/logs, or records."""
        for node in ast.walk(handler):
            if isinstance(node, ast.Raise):
                return True
            if isinstance(node, ast.Call):
                name = dotted_name(node.func)
                if name is None:
                    continue
                leaf = name.split(".")[-1]
                if leaf in SURFACING_CALLS or leaf in STRUCTURED_RECORDS:
                    return True
            if isinstance(node, ast.Name) and node.id in STRUCTURED_RECORDS:
                return True
        return False


RULE = _FaultHandlingRule()
