"""``pool-safety``: a static race/pickling detector for the pool layers.

The PR 6 shared-payload machinery (:mod:`repro.parallel`) made the pool
engines fast by shipping a ~100-byte token per task instead of re-pickling
routing matrices — and made them *correct* by ensuring workers operate on
an exact copy of the parent's objects, so serial and parallel runs emit
identical records (an invariant pinned by the serial==parallel tests since
BENCH_PR3).  Three coding mistakes silently break that contract:

1. submitting a lambda, a nested function or a bound method to a process
   pool — unpicklable under spawn, and a closure can capture a routing
   matrix that then gets re-pickled per task, exactly what the payload
   tokens exist to avoid;
2. capturing large payloads in task arguments when a
   :func:`~repro.parallel.share_payload` token would do (the closure form
   of the same mistake);
3. a worker *writing* to an object obtained from
   :func:`~repro.parallel.resolve_payload`: under ``fork`` the write hits
   copy-on-write pages (invisible corruption of worker-local state that
   diverges from serial runs); under ``spawn`` it mutates a per-worker
   copy, so results depend on which worker ran which task.

This rule checks (1) directly at every ``submit``/``map`` call on an
executor created by ``payload_executor`` / ``ProcessPoolExecutor``, and
(3) by tainting, inside every module-level function, the names bound from
``resolve_payload(...)`` (including tuple unpacking and subscripted
elements) and flagging assignments, augmented assignments, deletions and
known in-place-mutating method calls on them.  (2) is enforced
structurally by (1): only module-level functions may be submitted, and
module-level functions cannot close over locals.

The runtime backstop is ``resolve_payload`` itself, which returns
read-only ndarray views — but that only trips when a mutating task
actually runs; this rule fails the build before it ships.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from reprolint.astutil import dotted_name, walk_scopes
from reprolint.engine import Diagnostic, FileContext

__all__ = ["RULE"]

#: Calls that create a process-pool executor.
EXECUTOR_FACTORIES = {"payload_executor", "ProcessPoolExecutor"}

#: Executor methods that take a callable to run in a worker.
SUBMIT_METHODS = {"submit", "map"}

#: ndarray / container methods that mutate the receiver in place.
MUTATING_METHODS = {
    "fill", "sort", "partition", "put", "itemset", "resize", "setflags",
    "append", "extend", "insert", "remove", "reverse", "clear", "pop",
    "popitem", "update", "setdefault", "add", "discard",
}


class _PoolSafetyRule:
    name = "pool-safety"
    code = "REPRO301"
    description = (
        "pool tasks must be module-level functions, and workers must not mutate "
        "resolve_payload() results"
    )

    def check(self, context: FileContext) -> Iterator[Diagnostic]:
        module_functions = {
            statement.name
            for statement in context.tree.body
            if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        for scope in walk_scopes(context.tree):
            nested_functions = {
                statement.name
                for statement in scope.body
                if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef))
            } - module_functions
            executors = self._executor_names(scope)
            for node in scope.expressions():
                yield from self._check_submission(
                    node, executors, module_functions, nested_functions, context
                )
        for scope in walk_scopes(context.tree):
            if isinstance(scope.node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_worker_mutations(scope, context)

    # ------------------------------------------------------------------
    # task submission
    # ------------------------------------------------------------------
    def _executor_names(self, scope) -> set[str]:
        """Names bound to process-pool executors in this scope."""
        names: set[str] = set()
        for statement in scope.statements():
            if isinstance(statement, ast.Assign) and self._is_executor(statement.value):
                for target in statement.targets:
                    if isinstance(target, ast.Name):
                        names.add(target.id)
            elif isinstance(statement, (ast.With, ast.AsyncWith)):
                for item in statement.items:
                    if (
                        self._is_executor(item.context_expr)
                        and isinstance(item.optional_vars, ast.Name)
                    ):
                        names.add(item.optional_vars.id)
        return names

    @staticmethod
    def _is_executor(node: ast.expr) -> bool:
        if not isinstance(node, ast.Call):
            return False
        name = dotted_name(node.func)
        return name is not None and name.split(".")[-1] in EXECUTOR_FACTORIES

    def _check_submission(
        self,
        node: ast.expr,
        executors: set[str],
        module_functions: set[str],
        nested_functions: set[str],
        context: FileContext,
    ) -> Iterator[Diagnostic]:
        if not (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in SUBMIT_METHODS
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id in executors
            and node.args
        ):
            return
        task = node.args[0]
        if isinstance(task, ast.Lambda):
            yield self._diagnostic(
                context,
                task,
                "lambda submitted to a process pool: lambdas are unpicklable and "
                "close over the parent scope — define a module-level worker and "
                "ship payloads via share_payload()",
            )
        elif isinstance(task, ast.Name):
            if task.id in nested_functions:
                yield self._diagnostic(
                    context,
                    task,
                    f"nested function {task.id!r} submitted to a process pool: "
                    "closures are unpicklable and capture the enclosing frame — "
                    "move the worker to module level and ship payloads via "
                    "share_payload()",
                )
        elif isinstance(task, ast.Attribute):
            yield self._diagnostic(
                context,
                task,
                f"bound callable {dotted_name(task) or task.attr!r} submitted to a "
                "process pool: the whole receiver object is pickled into every "
                "task — use a module-level function and a share_payload() token",
            )

    # ------------------------------------------------------------------
    # worker-side mutation of shared payloads
    # ------------------------------------------------------------------
    def _check_worker_mutations(self, scope, context: FileContext) -> Iterator[Diagnostic]:
        tainted = self._payload_names(scope)
        if not tainted:
            return
        for statement in scope.statements():
            if isinstance(statement, ast.Assign):
                for target in statement.targets:
                    yield from self._check_write_target(target, tainted, context)
            elif isinstance(statement, ast.AugAssign):
                yield from self._check_write_target(
                    statement.target, tainted, context, augmented=True
                )
            elif isinstance(statement, ast.Delete):
                for target in statement.targets:
                    yield from self._check_write_target(target, tainted, context)
        for node in scope.expressions():
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in MUTATING_METHODS
                and self._is_tainted(node.func.value, tainted)
            ):
                yield self._diagnostic(
                    context,
                    node,
                    f"worker mutates a shared payload: .{node.func.attr}() on "
                    f"{self._describe(node.func.value)} writes to an object other "
                    "workers (and serial runs) read — copy it first",
                )

    def _payload_names(self, scope) -> set[str]:
        """Names bound (directly or by unpacking) from ``resolve_payload``."""
        tainted: set[str] = set()
        for _ in range(2):
            for statement in scope.statements():
                if not isinstance(statement, ast.Assign):
                    continue
                if self._is_payload_value(statement.value, tainted):
                    for target in statement.targets:
                        self._bind_target(target, tainted)
        return tainted

    def _is_payload_value(self, node: ast.expr, tainted: set[str]) -> bool:
        if isinstance(node, ast.Call):
            name = dotted_name(node.func)
            return name is not None and name.split(".")[-1] == "resolve_payload"
        if isinstance(node, (ast.Name, ast.Attribute, ast.Subscript)):
            return self._is_tainted(node, tainted)
        return False

    @staticmethod
    def _bind_target(target: ast.expr, tainted: set[str]) -> None:
        if isinstance(target, ast.Name):
            tainted.add(target.id)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                _PoolSafetyRule._bind_target(element, tainted)

    def _is_tainted(self, node: ast.expr, tainted: set[str]) -> bool:
        """Whether the expression reaches into a resolved payload."""
        current = node
        while isinstance(current, (ast.Subscript, ast.Attribute)):
            current = current.value
        return isinstance(current, ast.Name) and current.id in tainted

    def _check_write_target(
        self,
        target: ast.expr,
        tainted: set[str],
        context: FileContext,
        augmented: bool = False,
    ) -> Iterator[Diagnostic]:
        # Rebinding a plain name is fine (x = payload; x = other); writing
        # *into* the payload (x[i] = ..., x.attr = ..., x += ...) is not.
        if isinstance(target, (ast.Subscript, ast.Attribute)):
            if self._is_tainted(target, tainted):
                yield self._diagnostic(
                    context,
                    target,
                    "worker writes into a shared payload: "
                    f"{self._describe(target)} comes from resolve_payload() and is "
                    "shared (copy-on-write under fork) — copy before mutating",
                )
        elif augmented and isinstance(target, ast.Name) and target.id in tainted:
            yield self._diagnostic(
                context,
                target,
                f"augmented assignment to payload name {target.id!r}: in-place "
                "operators mutate the shared object — use a fresh array instead",
            )
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                yield from self._check_write_target(element, tainted, context, augmented)

    # ------------------------------------------------------------------
    @staticmethod
    def _describe(node: ast.expr) -> str:
        name = dotted_name(node)
        if name is not None:
            return name
        current = node
        while isinstance(current, (ast.Subscript, ast.Attribute)):
            current = current.value
        inner = dotted_name(current)
        return f"{inner}[...]" if inner else "<expression>"

    def _diagnostic(self, context: FileContext, node: ast.AST, message: str) -> Diagnostic:
        return Diagnostic(
            path=context.path,
            line=node.lineno,
            column=node.col_offset + 1,
            rule=self.name,
            code=self.code,
            message=message,
        )


RULE = _PoolSafetyRule()
