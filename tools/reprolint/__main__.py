"""Command-line entry point: ``python -m reprolint [paths...]``.

Exit codes: ``0`` when every checked file is clean, ``1`` when violations
were found, ``2`` on usage errors (unknown rule, missing path, malformed
allowlist).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Optional, Sequence

from reprolint.engine import load_allowlist, run_rules
from reprolint.rules import ALL_RULES, rules_by_name

DEFAULT_ALLOWLIST = Path(__file__).parent / "allowlist.txt"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="reprolint",
        description="AST-based invariant checker for the traffic-matrix estimation repo.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src", "benchmarks", "examples"],
        help="files or directories to check (default: src benchmarks examples)",
    )
    parser.add_argument(
        "--root",
        default=".",
        help="repository root that relative paths (and diagnostics) are resolved against",
    )
    parser.add_argument(
        "--select",
        default=None,
        help="comma-separated rule names to run (default: all rules)",
    )
    parser.add_argument(
        "--allowlist",
        default=str(DEFAULT_ALLOWLIST),
        help="allowlist file (default: the checked-in tools/reprolint/allowlist.txt)",
    )
    parser.add_argument(
        "--no-allowlist",
        action="store_true",
        help="ignore the allowlist file (inline pragmas still apply)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule families and exit",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    options = parser.parse_args(argv)

    if options.list_rules:
        for rule in ALL_RULES:
            print(f"{rule.code} {rule.name}: {rule.description}")
        return 0

    available = rules_by_name()
    if options.select is not None:
        selected_names = [name.strip() for name in options.select.split(",") if name.strip()]
        unknown = [name for name in selected_names if name not in available]
        if unknown:
            print(
                f"reprolint: unknown rule(s) {', '.join(unknown)}; "
                f"available: {', '.join(available)}",
                file=sys.stderr,
            )
            return 2
        rules = [available[name] for name in selected_names]
    else:
        rules = list(ALL_RULES)

    allowlist = ()
    if not options.no_allowlist:
        allowlist_path = Path(options.allowlist)
        if allowlist_path.exists():
            try:
                allowlist = load_allowlist(allowlist_path)
            except ValueError as exc:
                print(f"reprolint: {exc}", file=sys.stderr)
                return 2
        elif options.allowlist != str(DEFAULT_ALLOWLIST):
            print(f"reprolint: allowlist not found: {allowlist_path}", file=sys.stderr)
            return 2

    root = Path(options.root).resolve()
    try:
        diagnostics = run_rules(rules, [Path(p) for p in options.paths], root, allowlist)
    except FileNotFoundError as exc:
        print(f"reprolint: {exc}", file=sys.stderr)
        return 2

    for diagnostic in diagnostics:
        print(diagnostic.render())
    if diagnostics:
        counts: dict[str, int] = {}
        for diagnostic in diagnostics:
            counts[diagnostic.rule] = counts.get(diagnostic.rule, 0) + 1
        summary = ", ".join(f"{rule}: {count}" for rule, count in sorted(counts.items()))
        print(f"reprolint: {len(diagnostics)} violation(s) ({summary})")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
